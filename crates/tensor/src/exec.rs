//! Pluggable execution backends for the workspace's parallel paths.
//!
//! Every compute layer in the MERCURY reproduction — the blocked GEMMs in
//! [`ops`](crate::ops), the per-channel conv sharding and banked-probe
//! fan-out in `mercury-core`, and the per-layer model simulator in
//! `mercury-bench` — schedules its independent work items through one
//! [`Executor`]. Two backends exist:
//!
//! * [`ExecutorKind::Serial`] — every item runs on the calling thread in
//!   index order. This is the *reference semantics*: all documented
//!   behaviour and all determinism suites are defined against it.
//! * [`ExecutorKind::Threaded`] — items are distributed over a
//!   **persistent worker pool**: the worker threads are created once
//!   (lazily, at the first dispatched region) and parked on a condvar
//!   between parallel regions, so a region dispatch costs a wakeup
//!   (~µs), not a `thread::spawn` (~tens of µs). Callers only hand the
//!   executor work whose results are reduced in a deterministic order,
//!   so the threaded backend is **bit-identical** to serial for every
//!   engine, session, and simulator path (pinned by
//!   `tests/parallel_determinism.rs`).
//!
//! The backend is chosen per [`MercuryConfig`] via
//! `MercuryConfig::builder().executor(..)`; the `MERCURY_EXECUTOR`
//! environment variable (`serial`, `threaded`, `threaded:<n>`, or a bare
//! thread count) overrides the default so whole test suites can be
//! re-run on either backend without source changes. An *invalid*
//! `MERCURY_EXECUTOR` value fails loudly (listing the accepted forms)
//! instead of silently falling back to the default.
//!
//! # Pool lifecycle
//!
//! A threaded [`Executor`] owns its pool behind an [`Arc`]: **cloning
//! the executor shares the pool** rather than spawning a second one,
//! which is how long-lived owners (`MercurySession`, the model-sim
//! runner) hand one pool to every engine and layer they drive. The
//! workers exit and are joined when the last clone drops.
//!
//! Three safeguards keep the pool cheap and deadlock-free:
//!
//! * **Inline short-circuit** — regions whose estimated total work is
//!   below the executor's tuned dispatch threshold
//!   ([`DispatchTuning::dispatch_min_work`], seeded by
//!   [`POOL_DISPATCH_MIN_WORK`] and host-calibrated via
//!   `MERCURY_TUNE_PROFILE` — see [`crate::tune`]), or with fewer than
//!   two items, run inline on the calling thread without waking any
//!   worker.
//! * **Nested regions** — a thread that is already executing region
//!   items (a pool worker, or the dispatching caller itself) runs any
//!   inner parallel region inline instead of re-entering a pool, so an
//!   engine that shards GEMMs or bank probes inside a `submit_batch`
//!   fan-out can never deadlock on its own pool — and never
//!   oversubscribes the machine.
//! * **Participation capping** — a region with fewer items than the
//!   pool has workers only recruits `items - 1` of them (the caller is
//!   always the extra runner).
//!
//! [`MercuryConfig`]: https://docs.rs/mercury-core
//!
//! # Examples
//!
//! ```
//! use mercury_tensor::exec::{Executor, ExecutorKind};
//!
//! let serial = Executor::from_kind(ExecutorKind::Serial);
//! let pool = Executor::from_kind(ExecutorKind::Threaded { threads: 4 });
//! let a = serial.map_indexed(8, |i| i * i);
//! let b = pool.map_indexed(8, |i| i * i);
//! assert_eq!(a, b); // scheduling never changes results
//! ```

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::tune::DispatchTuning;

/// Which execution backend to build — the [`Copy`] configuration-level
/// selector stored in `MercuryConfig` (and `ModelSimConfig`); resolve it
/// into a runnable [`Executor`] with [`Executor::from_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Run every work item on the calling thread, in index order (the
    /// reference semantics).
    Serial,
    /// Distribute work items over a persistent pool of `threads` workers.
    /// `threads: 0` means "size to the machine" (the available
    /// parallelism) — on a single-core host that collapses to serial
    /// scheduling, so the auto-sized kind never pays thread overhead a
    /// machine cannot recoup. Pin an explicit width to force a pool
    /// (determinism suites do, to exercise oversubscription).
    Threaded {
        /// Worker count; `0` = auto-size (see above).
        threads: usize,
    },
}

/// An executor spec that matches none of the accepted forms — the typed
/// rejection [`ExecutorKind::parse`] returns, whose `Display` lists every
/// accepted spelling so a typo'd `MERCURY_EXECUTOR` tells the operator
/// exactly what would have worked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExecutorError {
    spec: String,
}

impl fmt::Display for ParseExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid executor spec {:?}; accepted forms: `serial`, `threaded`, `auto`, \
             `threaded:<n>`, or a bare thread count (`0` auto-sizes, `1` is serial)",
            self.spec
        )
    }
}

impl Error for ParseExecutorError {}

impl ExecutorKind {
    /// An auto-sized threaded backend.
    pub fn threaded_auto() -> Self {
        ExecutorKind::Threaded { threads: 0 }
    }

    /// Parses a backend spec: `serial`, `threaded` / `auto` (auto-sized),
    /// `threaded:<n>`, or a bare thread count (`1` parses as
    /// [`Serial`](Self::Serial)).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseExecutorError`] — whose message lists the accepted
    /// forms — for anything else.
    pub fn parse(spec: &str) -> Result<Self, ParseExecutorError> {
        let trimmed = spec.trim().to_ascii_lowercase();
        match trimmed.as_str() {
            "serial" => Ok(ExecutorKind::Serial),
            "threaded" | "auto" => Ok(ExecutorKind::threaded_auto()),
            other => {
                let n: usize = other
                    .strip_prefix("threaded:")
                    .unwrap_or(other)
                    .parse()
                    .map_err(|_| ParseExecutorError {
                        spec: spec.trim().to_string(),
                    })?;
                if n == 1 {
                    Ok(ExecutorKind::Serial)
                } else {
                    Ok(ExecutorKind::Threaded { threads: n })
                }
            }
        }
    }

    /// The backend selected by the `MERCURY_EXECUTOR` environment
    /// variable, or `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics — listing the accepted forms — when the variable is set to
    /// an invalid spec. A typo'd `MERCURY_EXECUTOR=thredded` must abort
    /// the run, not silently fall back to the default backend and taint
    /// whatever comparison the caller was running.
    pub fn from_env() -> Option<Self> {
        Some(Self::from_env_value(
            &std::env::var("MERCURY_EXECUTOR").ok()?,
        ))
    }

    /// Resolves one `MERCURY_EXECUTOR` value, panicking on invalid specs
    /// (see [`from_env`](Self::from_env)). Split out so the failure mode
    /// is testable without mutating the process environment.
    fn from_env_value(value: &str) -> Self {
        match Self::parse(value) {
            Ok(kind) => kind,
            Err(e) => panic!("MERCURY_EXECUTOR: {e}"),
        }
    }

    /// [`from_env`](Self::from_env) with a fallback for *unset* — the
    /// idiom config defaults use. An invalid value still fails loudly;
    /// only absence selects the fallback.
    pub fn from_env_or(fallback: Self) -> Self {
        Self::from_env().unwrap_or(fallback)
    }
}

/// The historical (1-core-calibrated) dispatch threshold: below this much
/// estimated total work (in abstract units of roughly one scalar FLOP —
/// i.e. very roughly a nanosecond of scalar compute), a region dispatched
/// through one of the `*_sized` scheduling variants runs inline on the
/// calling thread instead of waking pool workers, because the
/// wakeup/handoff cost (~µs) would exceed the parallel win. The plain
/// variants assume chunky items and always dispatch.
///
/// Since the autotuning pass landed this constant is only the **default
/// seed** for [`DispatchTuning::dispatch_min_work`] — the value an
/// executor actually gates on is resolved per process (profile file →
/// committed per-core defaults → this constant; see
/// [`DispatchTuning::resolved`]) and readable via [`Executor::tuning`].
pub const POOL_DISPATCH_MIN_WORK: usize = 32 * 1024;

/// The process-wide resolved tuning, computed once at the first executor
/// construction and reused for every later one: resolution can read a
/// profile file (`MERCURY_TUNE_PROFILE`), and hot paths construct
/// short-lived serial executors (e.g. per conv forward), so re-reading
/// the file per construction would put I/O on the forward path.
fn process_tuning() -> DispatchTuning {
    static TUNING: OnceLock<DispatchTuning> = OnceLock::new();
    *TUNING.get_or_init(DispatchTuning::resolved)
}

/// Snapshot of a pool's dispatch counters (see
/// [`Executor::pool_stats`]) — the observability hook the
/// assertion-backed CI smoke test uses to prove the threaded test leg
/// really exercises the pool rather than the inline short-circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured pool width (caller + parked workers).
    pub threads: usize,
    /// Regions actually handed to the worker pool.
    pub regions_dispatched: u64,
    /// Regions that short-circuited to inline execution (too little
    /// work, fewer than two items, or dispatched from inside another
    /// region).
    pub regions_inlined: u64,
    /// Dispatched regions that ended in a panic (on the caller or a
    /// recruited worker). The panic is re-raised on the dispatching
    /// thread after the region drains; the pool itself survives — its
    /// workers park and serve the next region — so this counter rising
    /// while `threads` stays constant is the expected fault signature,
    /// and a shrinking pool would show up as dispatch counters stalling.
    pub regions_panicked: u64,
}

/// A runnable execution backend: serial, or a handle to a persistent
/// worker pool of a fixed width. **Cloning shares the pool** — the clone
/// schedules onto the same parked workers — so long-lived owners resolve
/// one `Executor` and hand clones to everything they drive. The workers
/// are joined when the last clone drops.
///
/// All three scheduling primitives return (or apply) results in **item
/// index order**, regardless of which worker ran which item; callers get
/// determinism for free as long as the items themselves are independent.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    backend: Backend,
    /// The dispatch knob set this executor gates regions with, fixed at
    /// construction. Clones carry the same values, so every engine a
    /// session hands a clone to sizes its work hints in the same units
    /// the dispatch gate compares against.
    tuning: DispatchTuning,
}

#[derive(Debug, Clone, Default)]
enum Backend {
    #[default]
    Serial,
    Pool(Arc<pool::WorkerPool>),
}

impl Executor {
    /// The serial backend, with the process-resolved tuning (see
    /// [`DispatchTuning::resolved`]).
    pub fn serial() -> Self {
        Executor::serial_tuned(process_tuning())
    }

    /// The serial backend with explicit tuning. Serial scheduling itself
    /// ignores the dispatch knobs, but engines still read
    /// [`tuning`](Self::tuning) back for their work-hint units, so the
    /// serial reference in an A/B comparison should carry the same
    /// values as the pool it is compared against.
    pub fn serial_tuned(tuning: DispatchTuning) -> Self {
        Executor {
            backend: Backend::Serial,
            tuning,
        }
    }

    /// A threaded backend with an explicit worker count (`0` = auto-size,
    /// `1` collapses to serial) and the process-resolved tuning. The
    /// pool's threads are spawned lazily at the first dispatched region,
    /// then parked between regions.
    pub fn threaded(threads: usize) -> Self {
        Executor::threaded_tuned(threads, process_tuning())
    }

    /// [`threaded`](Self::threaded) with explicit tuning. Auto-sizing
    /// (`threads: 0`) resolves to the available parallelism **capped by
    /// `tuning.max_pool_width`** — the widest pool that measured as
    /// useful on this host; an *explicit* width is never capped
    /// (determinism suites deliberately pin oversubscribed pools).
    pub fn threaded_tuned(threads: usize, tuning: DispatchTuning) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(tuning.max_pool_width)
                .max(1)
        } else {
            threads
        };
        if threads <= 1 {
            return Executor::serial_tuned(tuning);
        }
        Executor {
            backend: Backend::Pool(Arc::new(pool::WorkerPool::new(threads))),
            tuning,
        }
    }

    /// Resolves a configuration-level [`ExecutorKind`] into a backend.
    /// Each call builds a *fresh* pool; owners that serve many requests
    /// should resolve once and clone the result (clones share the pool).
    pub fn from_kind(kind: ExecutorKind) -> Self {
        Executor::from_kind_tuned(kind, process_tuning())
    }

    /// [`from_kind`](Self::from_kind) with explicit tuning, for owners
    /// that resolve their own profile (e.g. `mercury-serve`'s config
    /// override) or tests pinning a tuning point.
    pub fn from_kind_tuned(kind: ExecutorKind, tuning: DispatchTuning) -> Self {
        match kind {
            ExecutorKind::Serial => Executor::serial_tuned(tuning),
            ExecutorKind::Threaded { threads } => Executor::threaded_tuned(threads, tuning),
        }
    }

    /// The dispatch tuning this executor was constructed with. Engines
    /// use this to size their work hints (probe costs, channel hints) in
    /// the same calibrated units the dispatch gate compares against.
    pub fn tuning(&self) -> DispatchTuning {
        self.tuning
    }

    /// Worker count (1 for the serial backend).
    pub fn threads(&self) -> usize {
        match &self.backend {
            Backend::Serial => 1,
            Backend::Pool(pool) => pool.width(),
        }
    }

    /// Whether this backend ever runs items off the calling thread.
    pub fn is_parallel(&self) -> bool {
        matches!(&self.backend, Backend::Pool(_))
    }

    /// Dispatch counters of the underlying pool (`None` for the serial
    /// backend). Counters are shared by every clone of this executor.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match &self.backend {
            Backend::Serial => None,
            Backend::Pool(pool) => Some(pool.stats()),
        }
    }

    /// Runs `f(0..n)`, returning the results in index order. Items are
    /// claimed dynamically (an atomic cursor), so heterogeneous item
    /// costs balance across workers; result order is index order either
    /// way. Assumes chunky items — see
    /// [`map_indexed_sized`](Self::map_indexed_sized) when a cheap
    /// per-item cost estimate exists.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed_sized(n, self.tuning.dispatch_min_work, f)
    }

    /// [`map_indexed`](Self::map_indexed) with an estimated per-item cost
    /// (in dispatch-threshold units, roughly scalar FLOPs): the pooled
    /// backend runs the region inline when `n * item_work` falls below
    /// the tuned dispatch threshold, so tiny regions never pay a worker
    /// wakeup.
    pub fn map_indexed_sized<R, F>(&self, n: usize, item_work: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self.dispatch_pool(n, item_work) {
            None => (0..n).map(f).collect(),
            Some(pool) => {
                let cursor = AtomicUsize::new(0);
                let results = pool::ResultSlots::new(n);
                pool.run_region(n, &|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    results.put(i, f(i));
                });
                results.collect()
            }
        }
    }

    /// [`map_indexed`](Self::map_indexed) with per-worker scratch state:
    /// each participating runner builds one `S` with `init` and reuses it
    /// across all the items it claims (the serial backend builds exactly
    /// one). Use this when items need expensive scratch — per-channel
    /// caches, packed buffers — that would otherwise be reallocated per
    /// item.
    pub fn map_with<S, R, I, F>(&self, n: usize, init: I, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        self.map_with_sized(n, self.tuning.dispatch_min_work, init, f)
    }

    /// [`map_with`](Self::map_with) with an estimated per-item cost (see
    /// [`map_indexed_sized`](Self::map_indexed_sized)).
    pub fn map_with_sized<S, R, I, F>(&self, n: usize, item_work: usize, init: I, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        match self.dispatch_pool(n, item_work) {
            None => {
                let mut scratch = init();
                (0..n).map(|i| f(i, &mut scratch)).collect()
            }
            Some(pool) => {
                let cursor = AtomicUsize::new(0);
                let results = pool::ResultSlots::new(n);
                pool.run_region(n, &|| {
                    // Build the scratch only once this runner has claimed
                    // an item: a late-waking worker that finds the cursor
                    // drained must not pay for (possibly expensive) state
                    // it will never use.
                    let mut scratch: Option<S> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        results.put(i, f(i, scratch.get_or_insert_with(&init)));
                    }
                });
                results.collect()
            }
        }
    }

    /// Consumes `items`, running `f(index, item)` for each and returning
    /// results in item order. Items are claimed dynamically and move into
    /// whichever runner claims them — the primitive behind disjoint
    /// `&mut` fan-out (bank shards, per-layer session engines).
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_owned_sized(items, self.tuning.dispatch_min_work, f)
    }

    /// [`map_owned`](Self::map_owned) with an estimated per-item cost
    /// (see [`map_indexed_sized`](Self::map_indexed_sized)).
    pub fn map_owned_sized<T, R, F>(&self, items: Vec<T>, item_work: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        match self.dispatch_pool(n, item_work) {
            None => items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect(),
            Some(pool) => {
                let cursor = AtomicUsize::new(0);
                let items = pool::ItemSlots::new(items);
                let results = pool::ResultSlots::new(n);
                pool.run_region(n, &|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    results.put(i, f(i, items.take(i)));
                });
                results.collect()
            }
        }
    }

    /// [`map_owned`](Self::map_owned) with a *per-item* cost estimate:
    /// `item_work[i]` is the work carried by `items[i]`, in the same
    /// units as [`map_owned_sized`](Self::map_owned_sized)'s uniform
    /// hint. Use this when items are genuinely uneven — e.g. banked probe
    /// jobs on a skewed batch — so the dispatch decision sees the real
    /// distribution instead of an average: the region goes to the pool
    /// only when at least **two** items carry nonzero work (a region with
    /// one hot item and the rest empty runs inline, however large the hot
    /// item — a second thread could not share its work) and the
    /// saturating total crosses the tuned dispatch threshold. Recruitment
    /// is likewise capped by the busy-item count, not the item count.
    ///
    /// # Panics
    ///
    /// Panics if `item_work.len() != items.len()`.
    pub fn map_owned_weighted<T, R, F>(&self, items: Vec<T>, item_work: &[usize], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        assert_eq!(item_work.len(), n, "one work hint per item");
        let total = item_work
            .iter()
            .fold(0usize, |acc, &w| acc.saturating_add(w));
        let busy = item_work.iter().filter(|&&w| w > 0).count();
        match self.dispatch_pool_weighted(n, busy, total) {
            None => items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect(),
            Some(pool) => {
                let cursor = AtomicUsize::new(0);
                let items = pool::ItemSlots::new(items);
                let results = pool::ResultSlots::new(n);
                pool.run_region(busy, &|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    results.put(i, f(i, items.take(i)));
                });
                results.collect()
            }
        }
    }

    /// The pool to dispatch a region of `n` items (each costing roughly
    /// `item_work` units) to, or `None` when the region should run inline:
    /// serial backend, fewer than two items, estimated work below the
    /// tuned `dispatch_min_work` threshold, or the calling thread is
    /// already executing items of an outer region (nested regions run
    /// inline — never deadlock, never oversubscribe).
    fn dispatch_pool(&self, n: usize, item_work: usize) -> Option<&pool::WorkerPool> {
        match &self.backend {
            Backend::Serial => None,
            Backend::Pool(pool) => {
                if n >= 2
                    && n.saturating_mul(item_work) >= self.tuning.dispatch_min_work
                    && !pool::in_region()
                {
                    Some(pool)
                } else {
                    pool.count_inline();
                    None
                }
            }
        }
    }

    /// [`dispatch_pool`](Self::dispatch_pool) for per-item work hints:
    /// dispatches when `busy` (items with nonzero work) is at least two
    /// and the saturating `total_work` crosses the threshold. One busy
    /// item means the region is effectively serial no matter how large —
    /// waking workers for the empty items is pure overhead.
    fn dispatch_pool_weighted(
        &self,
        n: usize,
        busy: usize,
        total_work: usize,
    ) -> Option<&pool::WorkerPool> {
        match &self.backend {
            Backend::Serial => None,
            Backend::Pool(pool) => {
                if n >= 2
                    && busy >= 2
                    && total_work >= self.tuning.dispatch_min_work
                    && !pool::in_region()
                {
                    Some(pool)
                } else {
                    pool.count_inline();
                    None
                }
            }
        }
    }
}

/// The persistent worker pool and the pointer-erased region handoff.
///
/// Workers are spawned once (lazily) and parked on a condvar; each
/// parallel region publishes a borrowed runner closure, bumps an epoch,
/// wakes the workers it recruits, and blocks until every recruit checks
/// back in. The pointer erasure and the disjoint-index result slots are
/// the two places this crate needs `unsafe` — both are confined to this
/// module, with the invariants documented at each site (this is the same
/// technique `std::thread::scope` itself builds on, minus the per-region
/// spawn this pool exists to avoid).
#[allow(unsafe_code)]
mod pool {
    use std::cell::{Cell, UnsafeCell};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    use super::PoolStats;

    thread_local! {
        /// How many region runners are live on this thread. Non-zero on a
        /// pool worker mid-job and on a dispatching caller while it runs
        /// its own share of a region; any inner region started then must
        /// execute inline (see [`super::Executor::dispatch_pool`]).
        static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    /// Whether the current thread is already executing region items.
    pub(super) fn in_region() -> bool {
        REGION_DEPTH.with(|d| d.get()) > 0
    }

    /// RAII region-depth bump, so the counter unwinds correctly when a
    /// runner panics.
    struct DepthGuard;

    impl DepthGuard {
        fn enter() -> Self {
            REGION_DEPTH.with(|d| d.set(d.get() + 1));
            DepthGuard
        }
    }

    impl Drop for DepthGuard {
        fn drop(&mut self) {
            REGION_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }

    /// A pointer-erased borrow of one region's runner closure. The
    /// dispatcher publishes it under the state lock and does not return
    /// from [`WorkerPool::run_region`] until every recruited worker has
    /// checked back in, so the pointee outlives every dereference.
    #[derive(Clone, Copy)]
    struct Job(*const (dyn Fn() + Sync));

    // SAFETY: the pointee is a `Sync` closure borrowed from the
    // dispatching thread's stack; `run_region` keeps that frame alive
    // (it blocks until `active == 0`) for as long as any worker can hold
    // this pointer, and `&(dyn Fn() + Sync)` is safe to share across
    // threads by definition.
    unsafe impl Send for Job {}

    impl Job {
        /// Runs the region closure.
        ///
        /// # Safety
        ///
        /// Must only be called between this job's publication and the
        /// dispatcher's `active == 0` handshake (the worker loop's
        /// protocol), while the dispatcher is still blocked in
        /// `run_region`.
        unsafe fn run(self) {
            // SAFETY: see above — the dispatcher's frame (and therefore
            // the closure and everything it borrows) is alive.
            unsafe { (*self.0)() }
        }
    }

    struct PoolState {
        /// Bumped once per dispatched region; workers use it to tell a
        /// fresh region from a spurious wakeup.
        epoch: u64,
        /// The current region's runner; `Some` exactly while a region is
        /// in flight.
        job: Option<Job>,
        /// Workers that may still join the current region (capped at
        /// `items - 1` so small regions recruit few workers).
        recruits_left: usize,
        /// Recruited workers that have not yet finished the region.
        active: usize,
        /// First panic payload raised by a worker this region.
        panic: Option<Box<dyn std::any::Any + Send>>,
        shutdown: bool,
    }

    struct SharedState {
        state: Mutex<PoolState>,
        /// Workers park here between regions.
        work_cv: Condvar,
        /// The dispatcher parks here until `active == 0`.
        done_cv: Condvar,
    }

    /// The threads and handoff state of one pool, created on the first
    /// dispatched region.
    struct PoolCore {
        shared: Arc<SharedState>,
        /// Serializes dispatchers: one region in flight per pool. Held
        /// across the whole region, so a second top-level thread simply
        /// queues behind the first (workers never take this lock).
        region_lock: Mutex<()>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    /// A persistent pool of `width - 1` parked worker threads (the
    /// dispatching caller is always the `width`-th runner).
    pub(super) struct WorkerPool {
        width: usize,
        core: OnceLock<PoolCore>,
        regions_dispatched: AtomicU64,
        regions_inlined: AtomicU64,
        regions_panicked: AtomicU64,
    }

    impl std::fmt::Debug for WorkerPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WorkerPool")
                .field("width", &self.width)
                .field("spawned", &self.core.get().is_some())
                .finish_non_exhaustive()
        }
    }

    impl WorkerPool {
        /// A pool of the given width (`>= 2`); threads spawn lazily.
        pub(super) fn new(width: usize) -> Self {
            debug_assert!(width >= 2, "width-1 pools are the serial backend");
            WorkerPool {
                width,
                core: OnceLock::new(),
                regions_dispatched: AtomicU64::new(0),
                regions_inlined: AtomicU64::new(0),
                regions_panicked: AtomicU64::new(0),
            }
        }

        pub(super) fn width(&self) -> usize {
            self.width
        }

        pub(super) fn count_inline(&self) {
            self.regions_inlined.fetch_add(1, Ordering::Relaxed);
        }

        pub(super) fn stats(&self) -> PoolStats {
            PoolStats {
                threads: self.width,
                regions_dispatched: self.regions_dispatched.load(Ordering::Relaxed),
                regions_inlined: self.regions_inlined.load(Ordering::Relaxed),
                regions_panicked: self.regions_panicked.load(Ordering::Relaxed),
            }
        }

        /// Runs one parallel region of `items` work items: publishes
        /// `runner` to the parked workers, recruits at most `items - 1`
        /// of them, runs `runner` on the calling thread too, and blocks
        /// until every recruit has finished. Worker panics are re-raised
        /// here after the region fully drains (so borrowed region state
        /// is never freed under a live worker).
        pub(super) fn run_region(&self, items: usize, runner: &(dyn Fn() + Sync)) {
            let core = self
                .core
                .get_or_init(|| PoolCore::spawn(self.width - 1, self.width));
            let region_guard = core
                .region_lock
                .lock()
                .expect("a pool dispatcher never panics while holding the region lock");
            self.regions_dispatched.fetch_add(1, Ordering::Relaxed);
            let recruits = core.workers.len().min(items.saturating_sub(1));
            {
                let mut state = core.shared.state.lock().unwrap();
                // SAFETY: pure lifetime erasure on a wide pointer (same
                // layout); validity across threads is enforced by the
                // region protocol documented on `Job`.
                let erased: *const (dyn Fn() + Sync) =
                    unsafe { std::mem::transmute(runner as *const (dyn Fn() + Sync + '_)) };
                state.job = Some(Job(erased));
                state.epoch += 1;
                state.recruits_left = recruits;
                state.active = recruits;
                if recruits == core.workers.len() {
                    core.shared.work_cv.notify_all();
                } else {
                    for _ in 0..recruits {
                        core.shared.work_cv.notify_one();
                    }
                }
            }
            let caller_result = {
                let _depth = DepthGuard::enter();
                catch_unwind(AssertUnwindSafe(runner))
            };
            let worker_panic = {
                let mut state = core.shared.state.lock().unwrap();
                while state.active > 0 {
                    state = core.shared.done_cv.wait(state).unwrap();
                }
                state.job = None;
                state.panic.take()
            };
            drop(region_guard);
            if caller_result.is_err() || worker_panic.is_some() {
                self.regions_panicked.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(payload) = caller_result {
                resume_unwind(payload);
            }
            if let Some(payload) = worker_panic {
                resume_unwind(payload);
            }
        }
    }

    impl Drop for WorkerPool {
        fn drop(&mut self) {
            let Some(core) = self.core.take() else {
                return; // never dispatched — no threads to join
            };
            {
                let mut state = core.shared.state.lock().unwrap();
                state.shutdown = true;
                core.shared.work_cv.notify_all();
            }
            for handle in core.workers {
                handle
                    .join()
                    .expect("pool worker exits cleanly on shutdown");
            }
        }
    }

    impl PoolCore {
        fn spawn(worker_count: usize, width: usize) -> PoolCore {
            let shared = Arc::new(SharedState {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    recruits_left: 0,
                    active: 0,
                    panic: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            });
            let workers = (0..worker_count)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("mercury-exec-{width}w-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn pool worker")
                })
                .collect();
            PoolCore {
                shared,
                region_lock: Mutex::new(()),
                workers,
            }
        }
    }

    /// The parked-worker protocol: wait for a fresh epoch, join its
    /// region if recruitment is still open, run the published job, check
    /// back in. A worker that wakes after recruitment closed just records
    /// the epoch and parks again.
    fn worker_loop(shared: &SharedState) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut state = shared.state.lock().unwrap();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen_epoch {
                        seen_epoch = state.epoch;
                        if state.recruits_left > 0 {
                            state.recruits_left -= 1;
                            // `job` is `Some` whenever recruitment is
                            // open: the dispatcher clears it only after
                            // every recruit finished.
                            break state.job.expect("open region publishes a job");
                        }
                        // Region already fully recruited — park again.
                    }
                    state = shared.work_cv.wait(state).unwrap();
                }
            };
            let result = {
                let _depth = DepthGuard::enter();
                // SAFETY: this thread was recruited for the current
                // region under the state lock, so the dispatcher is
                // blocked in `run_region` until this thread decrements
                // `active` below — the closure and its borrows are alive.
                catch_unwind(AssertUnwindSafe(|| unsafe { job.run() }))
            };
            let mut state = shared.state.lock().unwrap();
            if let Err(payload) = result {
                state.panic.get_or_insert(payload);
            }
            state.active -= 1;
            if state.active == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Result landing zone for one region: `n` disjoint slots, each
    /// written by exactly the runner that claimed its index.
    pub(super) struct ResultSlots<R> {
        slots: Vec<UnsafeCell<Option<R>>>,
    }

    // SAFETY: slot `i` is written only by the single runner that claimed
    // index `i` from the region's atomic cursor (`fetch_add` yields each
    // index exactly once), and only read after the region's completion
    // handshake (a lock acquire/release pair orders the writes before
    // the reads). `R: Send` moves the values across threads.
    unsafe impl<R: Send> Sync for ResultSlots<R> {}

    impl<R> ResultSlots<R> {
        pub(super) fn new(n: usize) -> Self {
            ResultSlots {
                slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
            }
        }

        /// Stores the result for claimed index `i`.
        pub(super) fn put(&self, i: usize, value: R) {
            // SAFETY: `i` was claimed from the region cursor by exactly
            // one runner (see the `Sync` impl), so no other thread holds
            // a reference into this slot.
            unsafe { *self.slots[i].get() = Some(value) };
        }

        /// Unwraps every slot in index order. Call only after the region
        /// completed without panicking.
        pub(super) fn collect(self) -> Vec<R> {
            self.slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("every index computed exactly once")
                })
                .collect()
        }
    }

    /// Owned work items for `map_owned`: each is moved out by exactly
    /// the runner that claimed its index.
    pub(super) struct ItemSlots<T> {
        slots: Vec<UnsafeCell<Option<T>>>,
    }

    // SAFETY: same disjoint-claim argument as [`ResultSlots`]; item `i`
    // is taken once by the runner that claimed index `i`.
    unsafe impl<T: Send> Sync for ItemSlots<T> {}

    impl<T> ItemSlots<T> {
        pub(super) fn new(items: Vec<T>) -> Self {
            ItemSlots {
                slots: items
                    .into_iter()
                    .map(|t| UnsafeCell::new(Some(t)))
                    .collect(),
            }
        }

        /// Moves item `i` out to the runner that claimed it.
        pub(super) fn take(&self, i: usize) -> T {
            // SAFETY: `i` was claimed from the region cursor by exactly
            // one runner, so this is the only access to the slot.
            unsafe { (*self.slots[i].get()).take() }.expect("every item consumed exactly once")
        }
    }
}

/// The retired spawn-per-region scheduling, kept **only** as a
/// measurement reference: `benches/executor_dispatch.rs` races it
/// against the persistent pool to quantify what parking the workers
/// buys. No production path calls into this module.
pub mod reference {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// `Executor::map_indexed` as PR 4 shipped it: spawn `threads` scoped
    /// workers for this one region, join them, return results in index
    /// order.
    pub fn map_indexed_spawned<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("executor worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(ExecutorKind::parse("serial"), Ok(ExecutorKind::Serial));
        assert_eq!(ExecutorKind::parse(" Serial "), Ok(ExecutorKind::Serial));
        assert_eq!(
            ExecutorKind::parse("threaded"),
            Ok(ExecutorKind::Threaded { threads: 0 })
        );
        assert_eq!(
            ExecutorKind::parse("auto"),
            Ok(ExecutorKind::threaded_auto())
        );
        assert_eq!(
            ExecutorKind::parse("threaded:8"),
            Ok(ExecutorKind::Threaded { threads: 8 })
        );
        assert_eq!(
            ExecutorKind::parse("4"),
            Ok(ExecutorKind::Threaded { threads: 4 })
        );
        // One thread is the serial backend by definition.
        assert_eq!(ExecutorKind::parse("1"), Ok(ExecutorKind::Serial));
        assert_eq!(ExecutorKind::parse("threaded:1"), Ok(ExecutorKind::Serial));
    }

    #[test]
    fn parse_rejections_list_the_accepted_forms() {
        for bad in ["warp-speed", "", "thredded", "threaded:", "threaded:x"] {
            let err = ExecutorKind::parse(bad).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("serial"), "{bad:?} -> {msg}");
            assert!(msg.contains("threaded:<n>"), "{bad:?} -> {msg}");
            assert!(msg.contains("auto"), "{bad:?} -> {msg}");
        }
        // The spec echoes back trimmed, so the operator sees what was read.
        assert!(ExecutorKind::parse(" thredded ")
            .unwrap_err()
            .to_string()
            .contains("\"thredded\""));
    }

    #[test]
    #[should_panic(expected = "accepted forms")]
    fn invalid_env_value_fails_loudly_not_silently() {
        // A typo'd MERCURY_EXECUTOR must abort, never silently select the
        // fallback backend.
        let _ = ExecutorKind::from_env_value("thredded");
    }

    #[test]
    fn resolution_rules() {
        assert_eq!(Executor::from_kind(ExecutorKind::Serial).threads(), 1);
        assert!(!Executor::serial().is_parallel());
        assert!(Executor::serial().pool_stats().is_none());
        let auto = Executor::from_kind(ExecutorKind::threaded_auto());
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(
            auto.threads(),
            cores,
            "auto-sizing follows the machine (serial on one core)"
        );
        assert_eq!(
            Executor::from_kind(ExecutorKind::Threaded { threads: 3 }).threads(),
            3
        );
    }

    #[test]
    fn clones_share_one_pool() {
        let exec = Executor::threaded(4);
        let clone = exec.clone();
        let before = exec.pool_stats().unwrap().regions_dispatched;
        let out = clone.map_indexed(16, |i| i + 1);
        assert_eq!(out, (1..17).collect::<Vec<_>>());
        assert_eq!(
            exec.pool_stats().unwrap().regions_dispatched,
            before + 1,
            "the clone dispatched onto the original's pool"
        );
    }

    #[test]
    fn map_indexed_matches_serial_for_every_width() {
        let want: Vec<usize> = (0..37).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Executor::threaded(threads);
            assert_eq!(
                exec.map_indexed(37, |i| i * i + 1),
                want,
                "{threads} threads"
            );
        }
        assert_eq!(
            Executor::serial().map_indexed(0, |i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn one_pool_serves_many_regions() {
        // The same pool instance runs many back-to-back regions of mixed
        // primitives — the lifecycle the long-lived owners rely on.
        let exec = Executor::threaded(4);
        for round in 0..50usize {
            let n = 1 + (round * 7) % 23;
            let a = exec.map_indexed(n, |i| i * round);
            assert_eq!(a, (0..n).map(|i| i * round).collect::<Vec<_>>());
            let b = exec.map_owned((0..n).collect::<Vec<_>>(), |i, item| i + item);
            assert_eq!(b, (0..n).map(|i| 2 * i).collect::<Vec<_>>());
        }
        let stats = exec.pool_stats().unwrap();
        assert!(stats.regions_dispatched > 0);
    }

    #[test]
    fn map_with_reuses_scratch_and_keeps_order() {
        // Scratch is per-worker: the sum of all per-item scratch counters
        // equals the item count, and results still land in index order.
        for threads in [1, 2, 8] {
            let exec = Executor::threaded(threads);
            let out = exec.map_with(
                20,
                || 0usize,
                |i, seen| {
                    *seen += 1;
                    (i, *seen)
                },
            );
            let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
            assert_eq!(indices, (0..20).collect::<Vec<_>>());
            let total: usize = {
                // Each worker's `seen` counts up; the per-item values are the
                // running count at that item, so the max over items per
                // worker sums to 20. Cheap cross-check: every item saw a
                // scratch that had processed at least itself.
                out.iter().map(|&(_, s)| s).filter(|&s| s >= 1).count()
            };
            assert_eq!(total, 20);
        }
    }

    #[test]
    fn map_owned_moves_items_and_keeps_order() {
        for threads in [1, 2, 5] {
            let exec = Executor::threaded(threads);
            let items: Vec<String> = (0..11).map(|i| format!("item{i}")).collect();
            let out = exec.map_owned(items, |i, s| format!("{i}:{s}"));
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("{i}:item{i}"));
            }
        }
    }

    #[test]
    fn heterogeneous_work_still_lands_in_order() {
        // Later items finish first under any real schedule; order must
        // come from the index, not completion time.
        let exec = Executor::threaded(4);
        let out = exec.map_indexed(16, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_sized_regions_short_circuit_inline() {
        let exec = Executor::threaded(4);
        let before = exec.pool_stats().unwrap();
        // 4 items of ~1 unit each: far below POOL_DISPATCH_MIN_WORK.
        let out = exec.map_indexed_sized(4, 1, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6]);
        // A single item never dispatches either, whatever its size.
        let out = exec.map_indexed_sized(1, usize::MAX, |i| i);
        assert_eq!(out, vec![0]);
        let after = exec.pool_stats().unwrap();
        assert_eq!(after.regions_dispatched, before.regions_dispatched);
        assert_eq!(after.regions_inlined, before.regions_inlined + 2);
        // Enough declared work flips the same shape over to the pool.
        let out = exec.map_indexed_sized(4, POOL_DISPATCH_MIN_WORK, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(
            exec.pool_stats().unwrap().regions_dispatched,
            before.regions_dispatched + 1
        );
    }

    #[test]
    fn weighted_map_matches_serial_and_gates_on_busy_items() {
        // Results must match the serial backend for any weight vector.
        let serial = Executor::serial();
        let weights = [0usize, 5, 0, POOL_DISPATCH_MIN_WORK, 7, 0, usize::MAX];
        let items: Vec<usize> = (0..weights.len()).collect();
        let want = serial.map_owned_weighted(items.clone(), &weights, |i, v| i * 100 + v);
        for threads in [2, 4] {
            let exec = Executor::threaded(threads);
            let got = exec.map_owned_weighted(items.clone(), &weights, |i, v| i * 100 + v);
            assert_eq!(got, want);
        }

        let exec = Executor::threaded(4);
        let before = exec.pool_stats().unwrap();
        // One hot item among empties: total is huge but only one item
        // carries work — a second thread could not help. Must inline.
        let skew = [usize::MAX, 0, 0, 0];
        let out = exec.map_owned_weighted(vec![1, 2, 3, 4], &skew, |_, v| v * 2);
        assert_eq!(out, vec![2, 4, 6, 8]);
        // Tiny totals inline too, even when spread across items.
        let tiny = [1usize, 1, 1, 1];
        exec.map_owned_weighted(vec![0; 4], &tiny, |_, v| v);
        let mid = exec.pool_stats().unwrap();
        assert_eq!(mid.regions_dispatched, before.regions_dispatched);
        assert_eq!(mid.regions_inlined, before.regions_inlined + 2);
        // Two busy items over the threshold dispatch; saturating totals
        // (two usize::MAX items) must not wrap back below it.
        let hot = [usize::MAX, usize::MAX, 0, 0];
        let out = exec.map_owned_weighted(vec![1, 2, 3, 4], &hot, |_, v| v + 1);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(
            exec.pool_stats().unwrap().regions_dispatched,
            before.regions_dispatched + 1
        );
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        // An item of an outer region that opens an inner region on the
        // same pool must complete (inline), not deadlock waiting for the
        // workers it is itself occupying — the submit_batch-fans-out-
        // engines-that-shard-GEMMs shape.
        let exec = Executor::threaded(2);
        let inner = exec.clone();
        let before = exec.pool_stats().unwrap();
        let out = exec.map_indexed(4, |i| {
            let inner_out = inner.map_indexed(8, move |j| i * 10 + j);
            inner_out.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, want);
        let after = exec.pool_stats().unwrap();
        assert_eq!(
            after.regions_dispatched,
            before.regions_dispatched + 1,
            "only the outer region dispatched"
        );
        assert_eq!(
            after.regions_inlined,
            before.regions_inlined + 4,
            "every inner region short-circuited inline"
        );
    }

    #[test]
    fn worker_panics_propagate_after_the_region_drains() {
        let exec = Executor::threaded(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.map_indexed(16, |i| {
                assert!(i != 11, "boom at {i}");
                i
            })
        }));
        assert!(result.is_err(), "the item panic must reach the caller");
        let stats = exec.pool_stats().unwrap();
        assert_eq!(stats.regions_panicked, 1, "the fault left an audit trail");
        // The pool survives a panicked region and serves the next one.
        assert_eq!(exec.map_indexed(8, |i| i), (0..8).collect::<Vec<_>>());
        let stats = exec.pool_stats().unwrap();
        assert_eq!(stats.threads, 4, "no worker died");
        assert_eq!(stats.regions_panicked, 1, "the clean region added nothing");
    }

    #[test]
    fn tuned_threshold_moves_the_dispatch_decision() {
        // The same region shape flips between inline and pooled purely by
        // the tuning it was constructed with — the contract a calibrated
        // profile relies on.
        let lax = DispatchTuning {
            dispatch_min_work: 8,
            ..DispatchTuning::default()
        };
        let exec = Executor::threaded_tuned(4, lax);
        assert_eq!(exec.tuning(), lax);
        assert_eq!(exec.map_indexed_sized(4, 2, |i| i), vec![0, 1, 2, 3]);
        assert_eq!(
            exec.pool_stats().unwrap().regions_dispatched,
            1,
            "8 units of declared work crossed the lax 8-unit threshold"
        );

        let strict = DispatchTuning {
            dispatch_min_work: usize::MAX,
            ..DispatchTuning::default()
        };
        let exec = Executor::threaded_tuned(4, strict);
        // The default (untuned) executor dispatches this exact shape —
        // see `tiny_sized_regions_short_circuit_inline`.
        let out = exec.map_indexed_sized(4, POOL_DISPATCH_MIN_WORK, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6]);
        let stats = exec.pool_stats().unwrap();
        assert_eq!(stats.regions_dispatched, 0, "strict threshold inlines it");
        assert_eq!(stats.regions_inlined, 1);

        // The weighted gate reads the same tuned threshold.
        let exec = Executor::threaded_tuned(4, lax);
        let out = exec.map_owned_weighted(vec![1, 2], &[4, 4], |_, v| v);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(exec.pool_stats().unwrap().regions_dispatched, 1);
    }

    #[test]
    fn auto_sizing_respects_the_tuned_width_cap() {
        // A measured useful width caps auto-sizing…
        let capped = DispatchTuning {
            max_pool_width: 1,
            ..DispatchTuning::default()
        };
        let exec = Executor::threaded_tuned(0, capped);
        assert!(
            !exec.is_parallel(),
            "auto-size capped to width 1 collapses to serial"
        );
        // …but never a pinned width: determinism suites oversubscribe on
        // purpose.
        let exec = Executor::threaded_tuned(8, capped);
        assert_eq!(exec.threads(), 8);
        // Serial executors still carry their tuning for engines to read.
        assert_eq!(Executor::serial_tuned(capped).tuning(), capped);
    }

    #[test]
    fn plain_variants_still_always_dispatch_under_extreme_tuning() {
        // The unsized primitives assume chunky items; even a profile with
        // a saturating threshold must not flip them to inline (n ≥ 2
        // times the threshold itself saturates back to the threshold).
        let strict = DispatchTuning {
            dispatch_min_work: usize::MAX,
            ..DispatchTuning::default()
        };
        let exec = Executor::threaded_tuned(2, strict);
        assert_eq!(exec.map_indexed(4, |i| i), vec![0, 1, 2, 3]);
        assert_eq!(exec.pool_stats().unwrap().regions_dispatched, 1);
    }

    #[test]
    fn spawned_reference_matches_pool_results() {
        let want: Vec<usize> = (0..33).map(|i| i ^ 5).collect();
        assert_eq!(reference::map_indexed_spawned(4, 33, |i| i ^ 5), want);
        assert_eq!(Executor::threaded(4).map_indexed(33, |i| i ^ 5), want);
    }
}
