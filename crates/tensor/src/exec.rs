//! Pluggable execution backends for the workspace's parallel paths.
//!
//! Every compute layer in the MERCURY reproduction — the blocked GEMMs in
//! [`ops`](crate::ops), the per-channel conv sharding and banked-probe
//! fan-out in `mercury-core`, and the per-layer model simulator in
//! `mercury-bench` — schedules its independent work items through one
//! [`Executor`]. Two backends exist:
//!
//! * [`ExecutorKind::Serial`] — every item runs on the calling thread in
//!   index order. This is the *reference semantics*: all documented
//!   behaviour and all determinism suites are defined against it.
//! * [`ExecutorKind::Threaded`] — items are distributed over a scoped
//!   pool of `std::thread` workers. Callers only hand the executor work
//!   whose results are reduced in a deterministic order, so the threaded
//!   backend is **bit-identical** to serial for every engine, session,
//!   and simulator path (pinned by `tests/parallel_determinism.rs`).
//!
//! The backend is chosen per [`MercuryConfig`] via
//! `MercuryConfig::builder().executor(..)`; the `MERCURY_EXECUTOR`
//! environment variable (`serial`, `threaded`, `threaded:<n>`, or a bare
//! thread count) overrides the default so whole test suites can be
//! re-run on either backend without source changes.
//!
//! [`MercuryConfig`]: https://docs.rs/mercury-core
//!
//! # Examples
//!
//! ```
//! use mercury_tensor::exec::{Executor, ExecutorKind};
//!
//! let serial = Executor::from_kind(ExecutorKind::Serial);
//! let pool = Executor::from_kind(ExecutorKind::Threaded { threads: 4 });
//! let a = serial.map_indexed(8, |i| i * i);
//! let b = pool.map_indexed(8, |i| i * i);
//! assert_eq!(a, b); // scheduling never changes results
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Which execution backend to build — the [`Copy`] configuration-level
/// selector stored in `MercuryConfig` (and `ModelSimConfig`); resolve it
/// into a runnable [`Executor`] with [`Executor::from_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Run every work item on the calling thread, in index order (the
    /// reference semantics).
    Serial,
    /// Distribute work items over a scoped pool of `threads` workers.
    /// `threads: 0` means "size to the machine" (the available
    /// parallelism) — on a single-core host that collapses to serial
    /// scheduling, so the auto-sized kind never pays thread overhead a
    /// machine cannot recoup. Pin an explicit width to force a pool
    /// (determinism suites do, to exercise oversubscription).
    Threaded {
        /// Worker count; `0` = auto-size (see above).
        threads: usize,
    },
}

impl ExecutorKind {
    /// An auto-sized threaded backend.
    pub fn threaded_auto() -> Self {
        ExecutorKind::Threaded { threads: 0 }
    }

    /// Parses a backend spec: `serial`, `threaded` / `auto` (auto-sized),
    /// `threaded:<n>`, or a bare thread count (`1` parses as
    /// [`Serial`](Self::Serial)). Returns `None` for anything else.
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "serial" => Some(ExecutorKind::Serial),
            "threaded" | "auto" => Some(ExecutorKind::threaded_auto()),
            other => {
                let n: usize = other
                    .strip_prefix("threaded:")
                    .unwrap_or(other)
                    .parse()
                    .ok()?;
                if n == 1 {
                    Some(ExecutorKind::Serial)
                } else {
                    Some(ExecutorKind::Threaded { threads: n })
                }
            }
        }
    }

    /// The backend selected by the `MERCURY_EXECUTOR` environment
    /// variable, or `None` when unset or unparseable.
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("MERCURY_EXECUTOR").ok()?)
    }

    /// [`from_env`](Self::from_env) with a fallback for unset/invalid —
    /// the idiom config defaults use.
    pub fn from_env_or(fallback: Self) -> Self {
        Self::from_env().unwrap_or(fallback)
    }
}

/// A runnable execution backend: serial, or a scoped thread pool of a
/// fixed width. Cheap to copy; carries no OS resources — threaded
/// executors spawn scoped workers per parallel region and join them
/// before returning, so no state outlives a call.
///
/// All three scheduling primitives return (or apply) results in **item
/// index order**, regardless of which worker ran which item; callers get
/// determinism for free as long as the items themselves are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// The serial backend.
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// A threaded backend with an explicit worker count (`0` = auto-size,
    /// `1` collapses to serial).
    pub fn threaded(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Executor { threads }
    }

    /// Resolves a configuration-level [`ExecutorKind`] into a backend.
    pub fn from_kind(kind: ExecutorKind) -> Self {
        match kind {
            ExecutorKind::Serial => Executor::serial(),
            ExecutorKind::Threaded { threads } => Executor::threaded(threads),
        }
    }

    /// Worker count (1 for the serial backend).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this backend ever runs items off the calling thread.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs `f(0..n)`, returning the results in index order. Items are
    /// claimed dynamically (an atomic cursor), so heterogeneous item
    /// costs balance across workers; result order is index order either
    /// way.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("executor worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }

    /// [`map_indexed`](Self::map_indexed) with per-worker scratch state:
    /// each worker builds one `S` with `init` and reuses it across all the
    /// items it claims (the serial backend builds exactly one). Use this
    /// when items need expensive scratch — per-channel caches, packed
    /// buffers — that would otherwise be reallocated per item.
    pub fn map_with<S, R, I, F>(&self, n: usize, init: I, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut scratch = init();
            return (0..n).map(|i| f(i, &mut scratch)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut scratch = init();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i, &mut scratch)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("executor worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }

    /// Consumes `items`, running `f(index, item)` for each and returning
    /// results in item order. Items are pre-assigned round-robin (worker
    /// `w` takes items `w, w + W, ...`), which lets each item move into
    /// its worker — the primitive behind disjoint `&mut` fan-out (bank
    /// shards, per-layer session engines).
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let mut per_worker: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            per_worker[i % workers].push((i, item));
        }
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|list| {
                    s.spawn(move || {
                        list.into_iter()
                            .map(|(i, item)| (i, f(i, item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("executor worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every item consumed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(ExecutorKind::parse("serial"), Some(ExecutorKind::Serial));
        assert_eq!(ExecutorKind::parse(" Serial "), Some(ExecutorKind::Serial));
        assert_eq!(
            ExecutorKind::parse("threaded"),
            Some(ExecutorKind::Threaded { threads: 0 })
        );
        assert_eq!(
            ExecutorKind::parse("auto"),
            Some(ExecutorKind::threaded_auto())
        );
        assert_eq!(
            ExecutorKind::parse("threaded:8"),
            Some(ExecutorKind::Threaded { threads: 8 })
        );
        assert_eq!(
            ExecutorKind::parse("4"),
            Some(ExecutorKind::Threaded { threads: 4 })
        );
        // One thread is the serial backend by definition.
        assert_eq!(ExecutorKind::parse("1"), Some(ExecutorKind::Serial));
        assert_eq!(
            ExecutorKind::parse("threaded:1"),
            Some(ExecutorKind::Serial)
        );
        assert_eq!(ExecutorKind::parse("warp-speed"), None);
        assert_eq!(ExecutorKind::parse(""), None);
    }

    #[test]
    fn resolution_rules() {
        assert_eq!(Executor::from_kind(ExecutorKind::Serial).threads(), 1);
        assert!(!Executor::serial().is_parallel());
        let auto = Executor::from_kind(ExecutorKind::threaded_auto());
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(
            auto.threads(),
            cores,
            "auto-sizing follows the machine (serial on one core)"
        );
        assert_eq!(
            Executor::from_kind(ExecutorKind::Threaded { threads: 3 }).threads(),
            3
        );
    }

    #[test]
    fn map_indexed_matches_serial_for_every_width() {
        let want: Vec<usize> = (0..37).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Executor::threaded(threads);
            assert_eq!(
                exec.map_indexed(37, |i| i * i + 1),
                want,
                "{threads} threads"
            );
        }
        assert_eq!(
            Executor::serial().map_indexed(0, |i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn map_with_reuses_scratch_and_keeps_order() {
        // Scratch is per-worker: the sum of all per-item scratch counters
        // equals the item count, and results still land in index order.
        for threads in [1, 2, 8] {
            let exec = Executor::threaded(threads);
            let out = exec.map_with(
                20,
                || 0usize,
                |i, seen| {
                    *seen += 1;
                    (i, *seen)
                },
            );
            let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
            assert_eq!(indices, (0..20).collect::<Vec<_>>());
            let total: usize = {
                // Each worker's `seen` counts up; the per-item values are the
                // running count at that item, so the max over items per
                // worker sums to 20. Cheap cross-check: every item saw a
                // scratch that had processed at least itself.
                out.iter().map(|&(_, s)| s).filter(|&s| s >= 1).count()
            };
            assert_eq!(total, 20);
        }
    }

    #[test]
    fn map_owned_moves_items_and_keeps_order() {
        for threads in [1, 2, 5] {
            let exec = Executor::threaded(threads);
            let items: Vec<String> = (0..11).map(|i| format!("item{i}")).collect();
            let out = exec.map_owned(items, |i, s| format!("{i}:{s}"));
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("{i}:item{i}"));
            }
        }
    }

    #[test]
    fn heterogeneous_work_still_lands_in_order() {
        // Later items finish first under any real schedule; order must
        // come from the index, not completion time.
        let exec = Executor::threaded(4);
        let out = exec.map_indexed(16, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
