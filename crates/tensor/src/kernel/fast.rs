//! Fast-math GEMM variant — **not** bit-identical, default-off.
//!
//! This module only exists behind the `fast-math` cargo feature. It trades
//! the workspace's bit-identical contract for FMA contraction: each
//! multiply-add rounds once instead of twice, which is usually *more*
//! accurate per operation but produces different bits than the scalar
//! reference (typically within a few ULPs for well-conditioned inputs).
//! Nothing in the workspace enables the feature; callers that opt in take
//! responsibility for downstream comparisons (MERCURY's reuse decisions
//! compare quantized signs, which are stable under ULP-level drift for
//! non-degenerate projections, but the repo's determinism suites assume
//! exact bits and are not run against this path).

/// [`gemm_blocked`](crate::ops::gemm_blocked) with FMA contraction:
/// `out[m, n] += a[m, k] · b[k, n]` over raw row-major slices, `b` rows
/// `ldb` wide. Falls back to the exact kernel when the host lacks
/// AVX2+FMA, so results are only reproducible across hosts with the same
/// instruction support.
///
/// # Panics
///
/// Same shape contract as [`gemm_blocked`](crate::ops::gemm_blocked).
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2+FMA path
pub fn gemm_blocked_fma(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ldb: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() && std::arch::is_x86_feature_detected!("fma") {
        assert!(ldb >= n, "ldb {ldb} must be at least n {n}");
        assert_eq!(a.len(), m * k, "a must be [m, k]");
        assert_eq!(b.len(), k * ldb, "b must be [k, ldb]");
        assert_eq!(out.len(), m * n, "out must be [m, n]");
        // SAFETY: AVX2 and FMA support were verified at runtime just above.
        unsafe { fma::gemm(out, a, b, m, k, n, ldb) };
        return;
    }
    crate::ops::gemm_blocked(out, a, b, m, k, n, ldb);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod fma {
    use crate::kernel::gemm::BLOCK;
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};

    /// The contracted block walk: same tiling as the exact kernel, but the
    /// strip update is `acc = fma(a, b, acc)` — one rounding per term.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 and FMA support at runtime and
    /// the shape contract (slice lengths match `m`/`k`/`n`/`ldb`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ldb: usize,
    ) {
        // SAFETY: all loads/stores go through unaligned intrinsics on
        // bounds-checked slices of at least 8 elements.
        unsafe {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                let mut jb = 0;
                while jb + BLOCK <= n {
                    let strip = &mut orow[jb..jb + BLOCK];
                    let mut lo = _mm256_loadu_ps(strip.as_ptr());
                    let mut hi = _mm256_loadu_ps(strip.as_ptr().add(8));
                    for (p, &aip) in arow.iter().enumerate() {
                        let brow = &b[p * ldb + jb..p * ldb + jb + BLOCK];
                        let av = _mm256_set1_ps(aip);
                        lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow.as_ptr()), lo);
                        hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow.as_ptr().add(8)), hi);
                    }
                    _mm256_storeu_ps(strip.as_mut_ptr(), lo);
                    _mm256_storeu_ps(strip.as_mut_ptr().add(8), hi);
                    jb += BLOCK;
                }
                if jb < n {
                    let tail = &mut orow[jb..];
                    for (p, &aip) in arow.iter().enumerate() {
                        let brow = &b[p * ldb + jb..p * ldb + n];
                        for (o, &bv) in tail.iter_mut().zip(brow) {
                            *o += aip * bv;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm_blocked;
    use crate::rng::Rng;

    #[test]
    fn fma_gemm_tracks_exact_gemm_within_tolerance() {
        let mut rng = Rng::new(81);
        for &(m, k, n, ldb) in &[
            (5usize, 33usize, 40usize, 40usize),
            (3, 7, 10, 24),
            (1, 64, 16, 16),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
            let b: Vec<f32> = (0..k * ldb).map(|_| rng.next_normal()).collect();
            let mut fast = vec![0.0f32; m * n];
            let mut exact = vec![0.0f32; m * n];
            gemm_blocked_fma(&mut fast, &a, &b, m, k, n, ldb);
            gemm_blocked(&mut exact, &a, &b, m, k, n, ldb);
            for (i, (f, e)) in fast.iter().zip(&exact).enumerate() {
                assert!(
                    (f - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "m={m} k={k} n={n} elem {i}: {f} vs {e}"
                );
            }
        }
    }
}
