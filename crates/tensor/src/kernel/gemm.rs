//! The GEMM register-block kernel: one 16-lane accumulator strip.
//!
//! [`ops::gemm_blocked`](crate::ops::gemm_blocked) walks each output row in
//! [`BLOCK`]-wide strips; this module owns the strip update
//! `acc[j] += a[p] · b[p, jb + j]` over all `p`, in ascending `p` order.
//! The AVX2 path runs the identical per-lane operation sequence (separate
//! multiply and add — FMA's single rounding would break the bit-identical
//! contract), so both paths produce the same bits for every input.

/// Width of the register block: 16 `f32` lanes (two 256-bit vectors).
pub const BLOCK: usize = 16;

/// Width of the wide strip: 64 `f32` lanes (eight 256-bit vectors).
/// Amortizes the per-`p` broadcast over four times as many lanes as
/// [`BLOCK`]; [`ops::gemm_blocked`](crate::ops::gemm_blocked) prefers it
/// whenever a full strip fits the row.
pub const WIDE: usize = 4 * BLOCK;

/// Accumulates one [`WIDE`]-lane strip of an output row, `p` ascending —
/// per lane the exact operation sequence of [`accumulate_block`], so the
/// result is bit-identical to the scalar reference.
///
/// # Panics
///
/// Panics if any `b[p·ldb + jb .. p·ldb + jb + WIDE]` range for
/// `p < arow.len()` is out of bounds.
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2 path
pub fn accumulate_wide(acc: &mut [f32; WIDE], arow: &[f32], b: &[f32], ldb: usize, jb: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::accumulate_wide(acc, arow, b, ldb, jb) };
        return;
    }
    accumulate_wide_scalar(acc, arow, b, ldb, jb);
}

/// The scalar reference for [`accumulate_wide`] — same per-lane sequence
/// as [`accumulate_block_scalar`], over the wider strip.
pub fn accumulate_wide_scalar(
    acc: &mut [f32; WIDE],
    arow: &[f32],
    b: &[f32],
    ldb: usize,
    jb: usize,
) {
    for (p, &aip) in arow.iter().enumerate() {
        let brow = &b[p * ldb + jb..p * ldb + jb + WIDE];
        for (aj, &bv) in acc.iter_mut().zip(brow) {
            *aj += aip * bv;
        }
    }
}

/// Width of the half strip: 8 `f32` lanes (one 256-bit vector). The
/// narrowest vectorized tile — [`ops::gemm_blocked`](crate::ops::gemm_blocked)
/// uses it on sub-[`BLOCK`] column tails, which dominate the reuse GEMMs
/// whose column count (the compute-row count) is small and arbitrary.
pub const HALF: usize = 8;

/// Accumulates one [`HALF`]-lane strip of an output row, `p` ascending —
/// per lane the exact operation sequence of [`accumulate_block`], so the
/// result is bit-identical to the scalar reference.
///
/// # Panics
///
/// Panics if any `b[p·ldb + jb .. p·ldb + jb + HALF]` range for
/// `p < arow.len()` is out of bounds.
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2 path
pub fn accumulate_half(acc: &mut [f32; HALF], arow: &[f32], b: &[f32], ldb: usize, jb: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::accumulate_half(acc, arow, b, ldb, jb) };
        return;
    }
    accumulate_half_scalar(acc, arow, b, ldb, jb);
}

/// The scalar reference for [`accumulate_half`] — same per-lane sequence
/// as [`accumulate_block_scalar`], over the narrower strip.
pub fn accumulate_half_scalar(
    acc: &mut [f32; HALF],
    arow: &[f32],
    b: &[f32],
    ldb: usize,
    jb: usize,
) {
    for (p, &aip) in arow.iter().enumerate() {
        let brow = &b[p * ldb + jb..p * ldb + jb + HALF];
        for (aj, &bv) in acc.iter_mut().zip(brow) {
            *aj += aip * bv;
        }
    }
}

/// Accumulates one [`BLOCK`]-wide strip of an output row:
/// `acc[j] += Σ_p arow[p] · b[p·ldb + jb + j]`, with `p` ascending — the
/// same per-element order as a sequential [`dot`](crate::ops::dot), so the
/// result is bit-identical to the scalar reference on every platform.
///
/// # Panics
///
/// Panics if any `b[p·ldb + jb .. p·ldb + jb + BLOCK]` range for
/// `p < arow.len()` is out of bounds.
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2 path
pub fn accumulate_block(acc: &mut [f32; BLOCK], arow: &[f32], b: &[f32], ldb: usize, jb: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::accumulate_block(acc, arow, b, ldb, jb) };
        return;
    }
    accumulate_block_scalar(acc, arow, b, ldb, jb);
}

/// The scalar reference for [`accumulate_block`] — the exact loop the
/// pre-SIMD `gemm_blocked` ran, kept callable so tests can pin the AVX2
/// path against it bit for bit.
pub fn accumulate_block_scalar(
    acc: &mut [f32; BLOCK],
    arow: &[f32],
    b: &[f32],
    ldb: usize,
    jb: usize,
) {
    for (p, &aip) in arow.iter().enumerate() {
        let brow = &b[p * ldb + jb..p * ldb + jb + BLOCK];
        for (aj, &bv) in acc.iter_mut().zip(brow) {
            *aj += aip * bv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{BLOCK, HALF, WIDE};
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// AVX2 [`super::accumulate_block`]: two 8-lane vectors hold the strip.
    /// Separate `mul` + `add` (two roundings, like the scalar reference) —
    /// **not** FMA — keeps the result bit-identical.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_block(
        acc: &mut [f32; BLOCK],
        arow: &[f32],
        b: &[f32],
        ldb: usize,
        jb: usize,
    ) {
        // SAFETY: all loads/stores go through unaligned intrinsics on
        // bounds-checked slices of at least 8 elements.
        unsafe {
            let mut lo = _mm256_loadu_ps(acc.as_ptr());
            let mut hi = _mm256_loadu_ps(acc.as_ptr().add(8));
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b[p * ldb + jb..p * ldb + jb + BLOCK];
                let av = _mm256_set1_ps(aip);
                lo = _mm256_add_ps(lo, _mm256_mul_ps(av, _mm256_loadu_ps(brow.as_ptr())));
                hi = _mm256_add_ps(hi, _mm256_mul_ps(av, _mm256_loadu_ps(brow.as_ptr().add(8))));
            }
            _mm256_storeu_ps(acc.as_mut_ptr(), lo);
            _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
        }
    }

    /// AVX2 [`super::accumulate_half`]: one 8-lane vector holds the strip.
    /// Separate `mul` + `add`, never FMA — bit-identical to the scalar
    /// reference.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_half(
        acc: &mut [f32; HALF],
        arow: &[f32],
        b: &[f32],
        ldb: usize,
        jb: usize,
    ) {
        // SAFETY: all loads/stores go through unaligned intrinsics on
        // bounds-checked slices of at least HALF elements.
        unsafe {
            let mut reg = _mm256_loadu_ps(acc.as_ptr());
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b[p * ldb + jb..p * ldb + jb + HALF];
                let av = _mm256_set1_ps(aip);
                reg = _mm256_add_ps(reg, _mm256_mul_ps(av, _mm256_loadu_ps(brow.as_ptr())));
            }
            _mm256_storeu_ps(acc.as_mut_ptr(), reg);
        }
    }

    /// AVX2 [`super::accumulate_wide`]: eight 8-lane vectors hold the
    /// strip, so each broadcast of `arow[p]` feeds 64 lanes. Separate
    /// `mul` + `add`, never FMA — bit-identical to the scalar reference.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_wide(
        acc: &mut [f32; WIDE],
        arow: &[f32],
        b: &[f32],
        ldb: usize,
        jb: usize,
    ) {
        const V: usize = WIDE / 8;
        // SAFETY: all loads/stores go through unaligned intrinsics on
        // bounds-checked slices of at least WIDE elements.
        unsafe {
            let mut regs = [_mm256_setzero_ps(); V];
            for (v, reg) in regs.iter_mut().enumerate() {
                *reg = _mm256_loadu_ps(acc.as_ptr().add(v * 8));
            }
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b[p * ldb + jb..p * ldb + jb + WIDE];
                let av = _mm256_set1_ps(aip);
                for (v, reg) in regs.iter_mut().enumerate() {
                    let bv = _mm256_loadu_ps(brow.as_ptr().add(v * 8));
                    *reg = _mm256_add_ps(*reg, _mm256_mul_ps(av, bv));
                }
            }
            for (v, reg) in regs.iter().enumerate() {
                _mm256_storeu_ps(acc.as_mut_ptr().add(v * 8), *reg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn dispatched_block_is_bit_identical_to_scalar_reference() {
        let mut rng = Rng::new(41);
        for &(k, ldb, jb) in &[
            (1usize, 16usize, 0usize),
            (9, 20, 0),
            (57, 40, 16),
            (200, 16, 0),
        ] {
            let arow: Vec<f32> = (0..k).map(|_| rng.next_normal()).collect();
            let b: Vec<f32> = (0..k * ldb).map(|_| rng.next_normal()).collect();
            let mut simd = [0.5f32; BLOCK];
            let mut scalar = simd;
            accumulate_block(&mut simd, &arow, &b, ldb, jb);
            accumulate_block_scalar(&mut scalar, &arow, &b, ldb, jb);
            for (lane, (s, r)) in simd.iter().zip(&scalar).enumerate() {
                assert!(
                    s.to_bits() == r.to_bits(),
                    "k={k} ldb={ldb} jb={jb} lane {lane}: {s} vs {r}"
                );
            }
        }
    }

    #[test]
    fn special_values_quantize_like_scalar() {
        // NaN, infinities, and signed zeros must propagate identically.
        let arow = [1.0f32, f32::NEG_INFINITY, 0.0, -0.0];
        let mut b = vec![0.0f32; 4 * BLOCK];
        b[0] = f32::NAN;
        b[BLOCK + 1] = 2.0;
        b[2 * BLOCK + 2] = -3.0;
        let mut simd = [0.0f32; BLOCK];
        let mut scalar = [0.0f32; BLOCK];
        accumulate_block(&mut simd, &arow, &b, BLOCK, 0);
        accumulate_block_scalar(&mut scalar, &arow, &b, BLOCK, 0);
        for (s, r) in simd.iter().zip(&scalar) {
            assert_eq!(s.to_bits(), r.to_bits(), "{s} vs {r}");
        }
    }

    #[test]
    fn wide_strip_is_bit_identical_to_scalar_reference() {
        let mut rng = Rng::new(43);
        for &(k, ldb, jb) in &[(1usize, 64usize, 0usize), (9, 80, 16), (57, 64, 0)] {
            let arow: Vec<f32> = (0..k).map(|_| rng.next_normal()).collect();
            let b: Vec<f32> = (0..k * ldb).map(|_| rng.next_normal()).collect();
            let mut simd = [0.25f32; WIDE];
            let mut scalar = simd;
            accumulate_wide(&mut simd, &arow, &b, ldb, jb);
            accumulate_wide_scalar(&mut scalar, &arow, &b, ldb, jb);
            for (lane, (s, r)) in simd.iter().zip(&scalar).enumerate() {
                assert!(
                    s.to_bits() == r.to_bits(),
                    "k={k} ldb={ldb} jb={jb} lane {lane}: {s} vs {r}"
                );
            }
        }
    }

    #[test]
    fn half_strip_is_bit_identical_to_scalar_reference() {
        let mut rng = Rng::new(45);
        for &(k, ldb, jb) in &[(1usize, 8usize, 0usize), (9, 20, 8), (57, 16, 8)] {
            let arow: Vec<f32> = (0..k).map(|_| rng.next_normal()).collect();
            let b: Vec<f32> = (0..k * ldb).map(|_| rng.next_normal()).collect();
            let mut simd = [0.75f32; HALF];
            let mut scalar = simd;
            accumulate_half(&mut simd, &arow, &b, ldb, jb);
            accumulate_half_scalar(&mut scalar, &arow, &b, ldb, jb);
            for (lane, (s, r)) in simd.iter().zip(&scalar).enumerate() {
                assert!(
                    s.to_bits() == r.to_bits(),
                    "k={k} ldb={ldb} jb={jb} lane {lane}: {s} vs {r}"
                );
            }
        }
    }

    #[test]
    fn wide_strip_matches_four_narrow_strips() {
        // The wide kernel must agree with four BLOCK strips over the same
        // columns — `gemm_blocked` relies on the two tilings being
        // interchangeable.
        let mut rng = Rng::new(44);
        let k = 13;
        let arow: Vec<f32> = (0..k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * WIDE).map(|_| rng.next_normal()).collect();
        let mut wide = [0.0f32; WIDE];
        accumulate_wide(&mut wide, &arow, &b, WIDE, 0);
        for blk in 0..WIDE / BLOCK {
            let mut narrow = [0.0f32; BLOCK];
            accumulate_block(&mut narrow, &arow, &b, WIDE, blk * BLOCK);
            for (lane, (w, n)) in wide[blk * BLOCK..(blk + 1) * BLOCK]
                .iter()
                .zip(&narrow)
                .enumerate()
            {
                assert_eq!(w.to_bits(), n.to_bits(), "block {blk} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn short_b_panics() {
        let mut acc = [0.0f32; BLOCK];
        accumulate_block(&mut acc, &[1.0], &[0.0; 8], 16, 0);
    }
}
