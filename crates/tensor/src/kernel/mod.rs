//! Explicit fixed-width SIMD kernels for the workspace's hot loops.
//!
//! Every compute-bound inner loop in the reproduction funnels through one
//! of four kernel families, laid out one-file-per-family (the UniZK
//! `src/kernel/` shape):
//!
//! * [`gemm`] — the register-block strips `ops::gemm_blocked`
//!   accumulates through,
//! * [`pack`] — transpose/gather packing that feeds the GEMM's `[plen, n]`
//!   panels,
//! * [`sign`] — the fused random-projection + sign-quantization kernel
//!   behind batched RPQ signature generation,
//! * [`scan`] — the vectorized tag compare over MCACHE's
//!   structure-of-arrays tag words.
//!
//! Each kernel ships a scalar reference and, on `x86_64`, an AVX2 path
//! selected by **runtime feature detection** (`std::arch` intrinsics — the
//! portable `std::simd` API is still nightly-only at this workspace's MSRV,
//! so the feature-gated lane types it would provide are not used). The
//! AVX2 paths keep the workspace's **bit-identical contract**: per output
//! element they perform exactly the scalar reference's operation sequence —
//! same multiplies, same adds, same ascending accumulation order, two
//! roundings per multiply-add (no FMA contraction) — so vectorizing across
//! independent elements changes nothing observable. Per-kernel unit tests
//! pin every SIMD path bit-identical to its scalar reference.
//!
//! The one place that trades exactness for speed lives behind the
//! default-off `fast-math` cargo feature (the `fast` module): an
//! FMA-contracted
//! GEMM whose single-rounding multiply-adds are *not* bit-identical to the
//! reference (typically a few ULPs apart). Nothing in the workspace
//! enables it; it exists for callers who opt out of the contract.

#[cfg(feature = "fast-math")]
pub mod fast;
pub mod gemm;
pub mod pack;
pub mod scan;
pub mod sign;

/// Whether the AVX2 kernel paths can run on this host. Detection is cached
/// by the standard library, so hot loops may call this per block without
/// re-probing CPUID.
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Whether the AVX2 kernel paths can run on this host (never, off
/// `x86_64` — every kernel then uses its scalar reference).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}
