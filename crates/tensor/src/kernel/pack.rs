//! Packing kernels that feed [`gemm`](super::gemm)'s `[plen, n]` panels.
//!
//! The conv engines multiply `[f, plen] × [plen, n]`, but im2col produces
//! the right operand as `[n, plen]` (one patch per row). These kernels
//! build the transposed panel walking the **destination** contiguously —
//! one streaming write row per patch element — instead of the
//! strided-write loops the engines used to inline. Pure shuffles, so no
//! SIMD variant is needed for the bit-identical contract; the win is the
//! access pattern.

/// Transposes an `[n, plen]` row-major matrix into `dst` as `[plen, n]`:
/// `dst[p·n + v] = src[v·plen + p]`.
///
/// # Panics
///
/// Panics if `src.len() != n * plen` or `dst.len() != plen * n`.
pub fn transpose_pack(dst: &mut [f32], src: &[f32], n: usize, plen: usize) {
    assert_eq!(src.len(), n * plen, "src must be [n, plen]");
    assert_eq!(dst.len(), plen * n, "dst must be [plen, n]");
    for p in 0..plen {
        let drow = &mut dst[p * n..(p + 1) * n];
        for (v, d) in drow.iter_mut().enumerate() {
            *d = src[v * plen + p];
        }
    }
}

/// Gathers the selected rows of an `[_, plen]` row-major matrix into `dst`
/// as a transposed `[plen, sel.len()]` panel:
/// `dst[p·sel.len() + r] = src[sel[r]·plen + p]` — the reuse engines' pack
/// of the to-compute patch subset.
///
/// # Panics
///
/// Panics if `dst.len() != plen * sel.len()` or any selected row is out of
/// bounds.
pub fn gather_pack(dst: &mut [f32], src: &[f32], sel: &[usize], plen: usize) {
    let rows = sel.len();
    assert_eq!(dst.len(), plen * rows, "dst must be [plen, sel.len()]");
    for p in 0..plen {
        let drow = &mut dst[p * rows..(p + 1) * rows];
        for (d, &v) in drow.iter_mut().zip(sel) {
            *d = src[v * plen + p];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn transpose_pack_matches_index_definition() {
        let mut rng = Rng::new(51);
        let (n, plen) = (7, 5);
        let src: Vec<f32> = (0..n * plen).map(|_| rng.next_normal()).collect();
        let mut dst = vec![0.0f32; plen * n];
        transpose_pack(&mut dst, &src, n, plen);
        for v in 0..n {
            for p in 0..plen {
                assert_eq!(dst[p * n + v].to_bits(), src[v * plen + p].to_bits());
            }
        }
    }

    #[test]
    fn gather_pack_selects_and_transposes() {
        let mut rng = Rng::new(52);
        let (n, plen) = (9, 4);
        let src: Vec<f32> = (0..n * plen).map(|_| rng.next_normal()).collect();
        let sel = [3usize, 0, 8, 3];
        let mut dst = vec![0.0f32; plen * sel.len()];
        gather_pack(&mut dst, &src, &sel, plen);
        for (r, &v) in sel.iter().enumerate() {
            for p in 0..plen {
                assert_eq!(
                    dst[p * sel.len() + r].to_bits(),
                    src[v * plen + p].to_bits()
                );
            }
        }
        // Identity selection degenerates to the plain transpose.
        let all: Vec<usize> = (0..n).collect();
        let mut gathered = vec![0.0f32; plen * n];
        let mut transposed = vec![0.0f32; plen * n];
        gather_pack(&mut gathered, &src, &all, plen);
        transpose_pack(&mut transposed, &src, n, plen);
        assert_eq!(gathered, transposed);
    }

    #[test]
    fn empty_selection_is_a_no_op() {
        let mut dst: Vec<f32> = Vec::new();
        gather_pack(&mut dst, &[1.0, 2.0], &[], 2);
        assert!(dst.is_empty());
    }

    #[test]
    #[should_panic(expected = "dst must be")]
    fn shape_mismatch_panics() {
        let mut dst = vec![0.0f32; 3];
        transpose_pack(&mut dst, &[1.0, 2.0, 3.0, 4.0], 2, 2);
    }
}
