//! The vectorized tag compare behind MCACHE's set scans.
//!
//! MCACHE stores cache tags structure-of-arrays — one dense `u128` word per
//! way — so probing a set is a contiguous scan for an exact 128-bit match.
//! [`find_u128`] is that scan: two tags per 256-bit compare on AVX2, a
//! plain `position` otherwise. Integer equality has no rounding or
//! ordering freedom, so both paths are trivially bit-identical.

/// Returns the index of the first element of `haystack` equal to `needle`,
/// like `haystack.iter().position(|&b| b == needle)`.
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2 path
pub fn find_u128(haystack: &[u128], needle: u128) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { avx2::find_u128(haystack, needle) };
    }
    find_u128_scalar(haystack, needle)
}

/// The scalar reference for [`find_u128`], kept callable so tests can pin
/// the AVX2 path against it.
pub fn find_u128_scalar(haystack: &[u128], needle: u128) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set_epi64x,
    };

    /// AVX2 [`super::find_u128`]: broadcasts the needle's two 64-bit halves
    /// into a `[hi, lo, hi, lo]` pattern and compares two tags per 256-bit
    /// load, eight tags per main-loop iteration. A tag matches when both of
    /// its 64-bit lanes compare equal; `movemask_pd` reduces each vector's
    /// four lane results to one nibble (bits `0b0011` the even tag,
    /// `0b1100` the odd one), the main loop stitches four nibbles into a
    /// 16-bit mask, and `m & (m >> 1)` on the even bit positions collapses
    /// each tag's lane pair to a single bit, so `trailing_zeros` yields
    /// the *first* matching tag — preserving first-match semantics. The
    /// sub-eight remainder runs the same compare one vector at a time,
    /// with a direct check for an odd trailing tag.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn find_u128(haystack: &[u128], needle: u128) -> Option<usize> {
        let lo = needle as u64 as i64;
        let hi = (needle >> 64) as u64 as i64;
        // _mm256_set_epi64x takes arguments high-lane-first; u128s sit in
        // memory little-endian (low u64 first), so the loaded lane order
        // per tag is [lo, hi].
        // SAFETY: each load reads exactly two u128s (32 bytes) from a
        // chunks_exact window through the unaligned intrinsic.
        unsafe {
            let pat = _mm256_set_epi64x(hi, lo, hi, lo);
            let mask2 = |pair: *const u128| -> u32 {
                let v = _mm256_loadu_si256(pair as *const __m256i);
                let eq = _mm256_cmpeq_epi64(v, pat);
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32
            };
            let mut chunks = haystack.chunks_exact(8);
            for (ci, oct) in chunks.by_ref().enumerate() {
                let p = oct.as_ptr();
                let m = mask2(p)
                    | (mask2(p.add(2)) << 4)
                    | (mask2(p.add(4)) << 8)
                    | (mask2(p.add(6)) << 12);
                // Even bit positions carry each tag's low lane, the next
                // bit its high lane; both set = a full 128-bit match. Tag
                // k's collapsed bit lands at position 2k, so the first
                // set bit's index halves to the first matching tag.
                let matched = m & (m >> 1) & 0x5555;
                if matched != 0 {
                    return Some(ci * 8 + (matched.trailing_zeros() / 2) as usize);
                }
            }
            let rem = chunks.remainder();
            let base = haystack.len() - rem.len();
            let mut pairs = rem.chunks_exact(2);
            for (ci, pair) in pairs.by_ref().enumerate() {
                let mask = mask2(pair.as_ptr());
                if mask & 0b0011 == 0b0011 {
                    return Some(base + ci * 2);
                }
                if mask & 0b1100 == 0b1100 {
                    return Some(base + ci * 2 + 1);
                }
            }
            if let [last] = *pairs.remainder() {
                if last == needle {
                    return Some(haystack.len() - 1);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn mix(rng: &mut Rng) -> u128 {
        // Widen two independent draws into a full 128-bit word.
        let hi = rng.next_u64() as u128;
        (hi << 64) | rng.next_u64() as u128
    }

    #[test]
    fn matches_scalar_position_on_random_haystacks() {
        let mut rng = Rng::new(71);
        for len in 0..=17usize {
            let haystack: Vec<u128> = (0..len).map(|_| mix(&mut rng)).collect();
            // Absent needle.
            let absent = mix(&mut rng);
            assert_eq!(
                find_u128(&haystack, absent),
                find_u128_scalar(&haystack, absent),
                "len={len} absent"
            );
            // Needle planted at every position, including odd ones and the
            // tail element a half-vector scan would miss.
            for pos in 0..len {
                let needle = haystack[pos];
                assert_eq!(
                    find_u128(&haystack, needle),
                    find_u128_scalar(&haystack, needle),
                    "len={len} pos={pos}"
                );
            }
        }
    }

    #[test]
    fn first_match_wins_on_duplicates() {
        let w = 0xdead_beef_dead_beef_dead_beef_dead_beefu128;
        let other = 1u128 << 64;
        assert_eq!(find_u128(&[other, w, w, w], w), Some(1));
        assert_eq!(find_u128(&[w, other, w], w), Some(0));
        // Duplicates inside one eight-tag block and straddling two.
        let mut hay = vec![other; 16];
        hay[5] = w;
        hay[6] = w;
        hay[11] = w;
        assert_eq!(find_u128(&hay, w), Some(5));
        hay[5] = other;
        hay[6] = other;
        assert_eq!(find_u128(&hay, w), Some(11));
    }

    #[test]
    fn half_matching_tags_do_not_false_positive() {
        // Tags sharing exactly one 64-bit half with the needle must not
        // match — the nibble test requires both lanes equal.
        let needle = (7u128 << 64) | 9;
        let lo_only = (1u128 << 64) | 9;
        let hi_only = (7u128 << 64) | 3;
        assert_eq!(
            find_u128(&[lo_only, hi_only, lo_only, hi_only], needle),
            None
        );
        assert_eq!(
            find_u128(&[lo_only, hi_only, needle, hi_only], needle),
            Some(2)
        );
        // Adjacent half-matches straddling one vector: [lo-half, hi-half]
        // would fool a per-lane OR reduction.
        assert_eq!(find_u128(&[lo_only, hi_only], needle), None);
    }
}
