//! The fused random-projection + sign-quantization kernel behind batched
//! RPQ signature generation.
//!
//! One call projects every row of an `[n, plen]` matrix against up to 128
//! filter columns and packs the sign bits (`projection < 0.0`) straight
//! from the accumulator registers into one `u128` word per row — the
//! projected matrix is never materialized.
//!
//! The filters are repacked once into zero-padded [`LANES`]-wide panels
//! ([`pack_sign_panels`]), so the inner loop reads full fixed-width lanes
//! with no stride and no ragged tail. [`LANES`] is 8 — one 256-bit vector —
//! rather than the GEMM's 16: signature widths sit around 20 bits, where
//! 8-lane blocks waste 4 padding lanes (⌈20/8⌉·8 = 24) against 16-lane
//! blocks' 12 (⌈20/16⌉·16 = 32), a ~25% arithmetic saving on top of the
//! vector width.
//!
//! Both paths accumulate in ascending row-element order and quantize with
//! the exact predicate `acc < 0.0` (NaN and `-0.0` quantize to 0), so the
//! produced words are bit-identical to per-filter scalar dot products.

/// Lane width of the sign kernel's accumulator blocks (one 256-bit
/// vector of `f32`).
pub const LANES: usize = 8;

/// Packs the first `bits` columns of a `[plen, ldb]` row-major filter
/// matrix into element-major zero-padded panels for [`sign_rows`]:
/// `panels[(p·nb + blk)·LANES + lane] = t[p·ldb + blk·LANES + lane]`,
/// with out-of-range lanes left at `0.0`. `panels` is cleared and resized
/// to `plen · ⌈bits/LANES⌉ · LANES`. All of row element `p`'s blocks sit
/// contiguously, so the kernels' `p`-outer walk reads one dense
/// `nb·LANES` slab per element — no strided block loads, no per-block
/// bounds checks.
///
/// # Panics
///
/// Panics if `t.len() != plen * ldb`, `ldb < bits`, or `bits` is zero or
/// exceeds 128.
pub fn pack_sign_panels(t: &[f32], plen: usize, ldb: usize, bits: usize, panels: &mut Vec<f32>) {
    assert_eq!(t.len(), plen * ldb, "filter matrix must be [plen, ldb]");
    assert!(
        ldb >= bits,
        "ldb {ldb} must cover the requested {bits} bits"
    );
    assert!((1..=128).contains(&bits), "bits must be in 1..=128");
    let nb = bits.div_ceil(LANES);
    panels.clear();
    panels.resize(plen * nb * LANES, 0.0);
    for p in 0..plen {
        for blk in 0..nb {
            let jb = blk * LANES;
            let width = LANES.min(bits - jb);
            panels[(p * nb + blk) * LANES..(p * nb + blk) * LANES + width]
                .copy_from_slice(&t[p * ldb + jb..p * ldb + jb + width]);
        }
    }
}

/// Projects every `plen`-element row of `rows` through the packed
/// `panels` (see [`pack_sign_panels`]) and appends one sign word per row
/// to `out`: bit `j` of a word is `1` iff the row's dot product with
/// filter `j` is strictly negative. Bits at `bits` and above are zero.
///
/// Accumulation runs in ascending row-element order per filter, so each
/// bit matches a sequential scalar [`dot`](crate::ops::dot) of row and
/// filter, bit for bit — on the scalar and the AVX2 path alike.
///
/// # Panics
///
/// Panics if `plen` is zero, `rows.len()` is not a multiple of `plen`,
/// `bits` is zero or exceeds 128, or `panels` has the wrong length.
#[allow(unsafe_code)] // runtime-dispatched call into the checked AVX2 path
pub fn sign_rows(rows: &[f32], plen: usize, bits: usize, panels: &[f32], out: &mut Vec<u128>) {
    assert!(plen > 0, "row length must be positive");
    assert_eq!(
        rows.len() % plen,
        0,
        "row matrix length {} is not a multiple of row length {plen}",
        rows.len()
    );
    assert!((1..=128).contains(&bits), "bits must be in 1..=128");
    let nb = bits.div_ceil(LANES);
    assert_eq!(
        panels.len(),
        nb * plen * LANES,
        "panels must come from pack_sign_panels for this (plen, bits)"
    );
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx2_available() {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { avx2::sign_rows(rows, plen, bits, panels, out) };
        return;
    }
    sign_rows_scalar(rows, plen, bits, panels, out);
}

/// The scalar reference for [`sign_rows`], kept callable so tests can pin
/// the AVX2 path against it bit for bit.
pub fn sign_rows_scalar(
    rows: &[f32],
    plen: usize,
    bits: usize,
    panels: &[f32],
    out: &mut Vec<u128>,
) {
    let nb = bits.div_ceil(LANES);
    out.reserve(rows.len() / plen);
    for row in rows.chunks_exact(plen) {
        let mut word = 0u128;
        for blk in 0..nb {
            let mut acc = [0.0f32; LANES];
            for (p, &x) in row.iter().enumerate() {
                let lanes = &panels[(p * nb + blk) * LANES..(p * nb + blk + 1) * LANES];
                for (a, &w) in acc.iter_mut().zip(lanes) {
                    *a += x * w;
                }
            }
            let jb = blk * LANES;
            for (lane, &a) in acc[..LANES.min(bits - jb)].iter().enumerate() {
                word |= ((a < 0.0) as u128) << (jb + lane);
            }
        }
        out.push(word);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::LANES;
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_setzero_ps, _CMP_LT_OQ,
    };

    /// AVX2 [`super::sign_rows`]: one 8-lane accumulator per block,
    /// separate mul + add (no FMA — two roundings, like the scalar
    /// reference), then a single ordered `< +0.0` compare + movemask to
    /// quantize the whole block. `_CMP_LT_OQ` makes NaN lanes compare
    /// false and `-0.0 < +0.0` false — exactly the scalar `a < 0.0`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sign_rows(
        rows: &[f32],
        plen: usize,
        bits: usize,
        panels: &[f32],
        out: &mut Vec<u128>,
    ) {
        // Fixed accumulator counts let the block loop unroll and the
        // accumulators live in registers, with one broadcast of `row[p]`
        // shared by every block — the shipped ~20-bit signatures take the
        // NB = 3 path. Wider configurations fall back to one pass per
        // group of four blocks (32 bits), sharing the same row walk.
        //
        // SAFETY: AVX2 was verified by the caller; holds for all four calls.
        unsafe {
            match bits.div_ceil(LANES) {
                1 => sign_rows_fixed::<1>(rows, plen, bits, panels, out),
                2 => sign_rows_fixed::<2>(rows, plen, bits, panels, out),
                3 => sign_rows_fixed::<3>(rows, plen, bits, panels, out),
                _ => sign_rows_generic(rows, plen, bits, panels, out),
            }
        }
    }

    /// `sign_rows` with the block count fixed at compile time: `NB`
    /// accumulators per row stay in registers across the row walk. The
    /// main loop signs *four rows per pass* — `4·NB ≤ 12` accumulators
    /// plus `NB` shared panel vectors fit the 16-register file — so each
    /// panel load is reused by four broadcasts and the four-way
    /// independent add chains hide the `vaddps` latency that serializes
    /// a single row's walk.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn sign_rows_fixed<const NB: usize>(
        rows: &[f32],
        plen: usize,
        bits: usize,
        panels: &[f32],
        out: &mut Vec<u128>,
    ) {
        debug_assert_eq!(bits.div_ceil(LANES), NB);
        out.reserve(rows.len() / plen);
        // SAFETY: every load reads 8 elements of a `chunks_exact(NB·LANES)`
        // slab of the length-checked `panels` slice (one dense slab per
        // row element — the element-major pack order) through the
        // unaligned intrinsic.
        unsafe {
            let zero = _mm256_setzero_ps();
            // Per row and block the operation sequence is identical in
            // both loops — ascending p, separate mul then add — so the
            // four-way batching below is unobservable in the output bits.
            let slabs = &panels[..plen * NB * LANES];
            let mut quads = rows.chunks_exact(4 * plen);
            for quad in quads.by_ref() {
                let (r01, r23) = quad.split_at(2 * plen);
                let (r0, r1) = r01.split_at(plen);
                let (r2, r3) = r23.split_at(plen);
                let mut acc = [[zero; NB]; 4];
                let xs = r0.iter().zip(r1).zip(r2).zip(r3);
                for (slab, (((&x0, &x1), &x2), &x3)) in slabs.chunks_exact(NB * LANES).zip(xs) {
                    let mut pv = [zero; NB];
                    for (blk, v) in pv.iter_mut().enumerate() {
                        *v = _mm256_loadu_ps(slab.as_ptr().add(blk * LANES));
                    }
                    for (accr, xv) in acc.iter_mut().zip([x0, x1, x2, x3]) {
                        let xv = _mm256_set1_ps(xv);
                        for (a, &v) in accr.iter_mut().zip(&pv) {
                            *a = _mm256_add_ps(*a, _mm256_mul_ps(xv, v));
                        }
                    }
                }
                for accr in &acc {
                    out.push(quantize::<NB>(accr, bits));
                }
            }
            for row in quads.remainder().chunks_exact(plen) {
                let mut acc = [zero; NB];
                for (slab, &x) in slabs.chunks_exact(NB * LANES).zip(row) {
                    let xv = _mm256_set1_ps(x);
                    for (blk, a) in acc.iter_mut().enumerate() {
                        let bv = _mm256_loadu_ps(slab.as_ptr().add(blk * LANES));
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(xv, bv));
                    }
                }
                out.push(quantize::<NB>(&acc, bits));
            }
        }
    }

    /// Quantizes one row's `NB` accumulator blocks to a sign word with the
    /// ordered `< +0.0` compare (NaN and `-0.0` lanes quantize to 0).
    ///
    /// Padding lanes accumulate only `x · 0.0` terms, which can never
    /// drive a `+0.0`-seeded accumulator negative, but the contract (bits
    /// at `bits` and above are zero) must not rest on that — hence the
    /// final mask.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn quantize<const NB: usize>(acc: &[__m256; NB], bits: usize) -> u128 {
        let zero = _mm256_setzero_ps();
        // Up to eight blocks fit a u64, sparing the two-register u128
        // shift/or per block; the assembled word is identical either way.
        let mut word = if NB <= 8 {
            let mut w = 0u64;
            for (blk, &a) in acc.iter().enumerate() {
                let neg = _mm256_cmp_ps::<_CMP_LT_OQ>(a, zero);
                w |= (_mm256_movemask_ps(neg) as u32 as u64) << (blk * LANES);
            }
            w as u128
        } else {
            let mut w = 0u128;
            for (blk, &a) in acc.iter().enumerate() {
                let neg = _mm256_cmp_ps::<_CMP_LT_OQ>(a, zero);
                w |= (_mm256_movemask_ps(neg) as u32 as u128) << (blk * LANES);
            }
            w
        };
        if bits < 128 {
            word &= (1u128 << bits) - 1;
        }
        word
    }

    /// `sign_rows` for any block count: one accumulator per block,
    /// blocks walked outer so the working set stays one vector.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn sign_rows_generic(
        rows: &[f32],
        plen: usize,
        bits: usize,
        panels: &[f32],
        out: &mut Vec<u128>,
    ) {
        let nb = bits.div_ceil(LANES);
        out.reserve(rows.len() / plen);
        // SAFETY: every load reads 8 elements from a bounds-checked slice
        // through the unaligned intrinsic.
        unsafe {
            let zero = _mm256_setzero_ps();
            for row in rows.chunks_exact(plen) {
                let mut word = 0u128;
                for blk in 0..nb {
                    let mut acc = zero;
                    for (p, &x) in row.iter().enumerate() {
                        let lanes = &panels[(p * nb + blk) * LANES..(p * nb + blk + 1) * LANES];
                        let xv = _mm256_set1_ps(x);
                        acc =
                            _mm256_add_ps(acc, _mm256_mul_ps(xv, _mm256_loadu_ps(lanes.as_ptr())));
                    }
                    let neg = _mm256_cmp_ps::<_CMP_LT_OQ>(acc, zero);
                    let mask = _mm256_movemask_ps(neg) as u32 as u128;
                    word |= mask << (blk * LANES);
                }
                if bits < 128 {
                    word &= (1u128 << bits) - 1;
                }
                out.push(word);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn reference_word(row: &[f32], t: &[f32], ldb: usize, bits: usize) -> u128 {
        // Straight per-filter scalar dots — the semantics both paths pin to.
        let mut word = 0u128;
        for j in 0..bits {
            let mut acc = 0.0f32;
            for (p, &x) in row.iter().enumerate() {
                acc += x * t[p * ldb + j];
            }
            word |= ((acc < 0.0) as u128) << j;
        }
        word
    }

    #[test]
    fn packed_kernel_matches_scalar_dots_bit_for_bit() {
        let mut rng = Rng::new(61);
        for &(plen, ldb, bits, n) in &[
            (9usize, 20usize, 20usize, 37usize),
            (9, 20, 1, 5),
            (4, 128, 128, 11),
            (25, 64, 24, 8),
            (1, 8, 7, 16),
        ] {
            let t: Vec<f32> = (0..plen * ldb).map(|_| rng.next_normal()).collect();
            let rows: Vec<f32> = (0..n * plen).map(|_| rng.next_normal()).collect();
            let mut panels = Vec::new();
            pack_sign_panels(&t, plen, ldb, bits, &mut panels);
            let mut simd = Vec::new();
            sign_rows(&rows, plen, bits, &panels, &mut simd);
            let mut scalar = Vec::new();
            sign_rows_scalar(&rows, plen, bits, &panels, &mut scalar);
            assert_eq!(simd, scalar, "plen={plen} bits={bits}");
            for (i, row) in rows.chunks_exact(plen).enumerate() {
                assert_eq!(
                    simd[i],
                    reference_word(row, &t, ldb, bits),
                    "plen={plen} bits={bits} row {i}"
                );
            }
        }
    }

    #[test]
    fn nan_and_negative_zero_quantize_to_zero_bits() {
        // `acc < 0.0` is false for NaN and -0.0; the SIMD compare must
        // agree on both paths.
        let plen = 2;
        let bits = 3;
        // Filters: col 0 → NaN projection, col 1 → -0.0, col 2 → negative.
        let t = vec![f32::INFINITY, -0.0, -1.0, f32::NEG_INFINITY, 0.0, 0.0];
        let mut panels = Vec::new();
        pack_sign_panels(&t, plen, bits, bits, &mut panels);
        let rows = vec![1.0f32, 1.0];
        let mut simd = Vec::new();
        sign_rows(&rows, plen, bits, &panels, &mut simd);
        let mut scalar = Vec::new();
        sign_rows_scalar(&rows, plen, bits, &panels, &mut scalar);
        assert_eq!(simd, scalar);
        // inf + -inf = NaN → 0; 1·-0.0 + 1·0.0 = +0.0 → 0; -1 → 1.
        assert_eq!(simd[0], 0b100);
    }

    #[test]
    fn high_bits_beyond_requested_width_stay_zero() {
        let mut rng = Rng::new(62);
        let (plen, bits) = (6, 13);
        let t: Vec<f32> = (0..plen * bits).map(|_| rng.next_normal()).collect();
        let rows: Vec<f32> = (0..8 * plen).map(|_| rng.next_normal()).collect();
        let mut panels = Vec::new();
        pack_sign_panels(&t, plen, bits, bits, &mut panels);
        let mut words = Vec::new();
        sign_rows(&rows, plen, bits, &panels, &mut words);
        for w in words {
            assert_eq!(w >> bits, 0, "padding lanes leaked into the word");
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_rejected() {
        pack_sign_panels(&[0.0], 1, 1, 0, &mut Vec::new());
    }
}
