//! Dense `f32` tensor substrate for the MERCURY reproduction.
//!
//! The MERCURY accelerator (HPCA 2023) operates on multidimensional dot
//! products between *input vectors* and *weight vectors* extracted from
//! convolution, fully-connected, and attention layers. This crate provides
//! the numeric substrate every other crate in the workspace builds on:
//!
//! * [`Tensor`] — an owned, row-major, dense `f32` tensor with shape
//!   bookkeeping and bounds-checked indexing,
//! * [`conv`] — im2col extraction and reference conv2d forward/backward,
//!   matching the formulation of §II-C of the paper (equations 1 and 2),
//! * [`ops`] — matmul, transpose and elementwise helpers,
//! * [`kernel`] — the fixed-width SIMD kernels (GEMM block, pack, fused
//!   sign quantization, tag scan) the hot loops dispatch through, each
//!   pinned bit-identical to its scalar reference,
//! * [`exec`] — the pluggable [`Executor`](exec::Executor) backend (serial
//!   reference vs persistent worker pool) every parallel path in the
//!   workspace schedules through, bit-identically,
//! * [`tune`] — the host-calibrated [`DispatchTuning`](tune::DispatchTuning)
//!   knob set executors resolve at construction, and the versioned
//!   `TuneProfile` JSON the `bench_tune` calibration pass emits,
//! * [`scratch`] — per-thread recycling arenas for the hot paths' scratch
//!   buffers, so pool workers stop hitting the global allocator once warm,
//! * [`rng`] — a small deterministic RNG (SplitMix64 + Box–Muller) so every
//!   experiment in the workspace is reproducible from a single `u64` seed.
//!
//! # Examples
//!
//! ```
//! use mercury_tensor::{Tensor, rng::Rng};
//!
//! # fn main() -> Result<(), mercury_tensor::TensorError> {
//! let mut rng = Rng::new(42);
//! let input = Tensor::randn(&[1, 5, 5], &mut rng);
//! let kernel = Tensor::randn(&[1, 3, 3], &mut rng);
//! let out = mercury_tensor::conv::conv2d(&input, &kernel, 1, 0)?;
//! assert_eq!(out.shape(), &[1, 3, 3]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod conv;
mod error;
pub mod exec;
pub mod kernel;
pub mod ops;
pub mod rng;
pub mod scratch;
mod tensor;
pub mod tune;

pub use error::TensorError;
pub use tensor::Tensor;
