//! Matrix and vector operations used throughout the workspace.

use crate::exec::Executor;
use crate::kernel;
use crate::{Tensor, TensorError};

/// Dot product of two equal-length slices.
///
/// This is the fundamental operation MERCURY memoizes: every PE-set
/// computation in the simulator reduces to calls of this function.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Matrix multiplication of a `[m, k]` tensor by a `[k, n]` tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D operands and
/// [`TensorError::ShapeMismatch`] when the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use mercury_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), mercury_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
    Ok(out)
}

/// Blocked GEMM over raw row-major slices: `out[m, n] += a[m, k] · b[k, n]`,
/// where `b`'s rows are `ldb` elements long and only its first `n` columns
/// participate (`ldb >= n`). The leading-dimension parameter lets callers
/// multiply against a column prefix of a wider matrix — e.g. the first
/// `bits` filters of a transposed projection matrix — without copying.
///
/// The k-dimension is tiled so a block of `b` stays cache-resident across
/// all rows of `a`, while the innermost loop streams `out` and `b` rows
/// contiguously (auto-vectorizable). Accumulation over `k` runs in
/// ascending order per output element, so results are bit-identical to a
/// sequential [`dot`] of the corresponding row and column.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`/`k`/`n`/`ldb` or
/// `ldb < n`.
pub fn gemm_blocked(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ldb: usize,
) {
    assert!(ldb >= n, "ldb {ldb} must be at least n {n}");
    assert_eq!(a.len(), m * k, "a must be [m, k]");
    assert_eq!(b.len(), k * ldb, "b must be [k, ldb]");
    assert_eq!(out.len(), m * n, "out must be [m, n]");
    // Register-blocked along j: full JB-wide blocks keep the running
    // accumulator in registers across the whole k loop (the SIMD strip
    // kernel, or its unrolled scalar reference); the sub-JB tail streams
    // the output row instead, so no variable-length block defeats
    // unrolling.
    const JB: usize = kernel::gemm::BLOCK;
    const JW: usize = kernel::gemm::WIDE;
    const JH: usize = kernel::gemm::HALF;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut jb = 0;
        // Widest strip first: one broadcast of `a[i, p]` feeds 64 lanes.
        // Both strip kernels perform the identical per-lane sequence, so
        // the tiling split is unobservable in the output bits.
        while jb + JW <= n {
            let mut acc = [0.0f32; JW];
            acc.copy_from_slice(&orow[jb..jb + JW]);
            kernel::gemm::accumulate_wide(&mut acc, arow, b, ldb, jb);
            orow[jb..jb + JW].copy_from_slice(&acc);
            jb += JW;
        }
        while jb + JB <= n {
            let mut acc = [0.0f32; JB];
            acc.copy_from_slice(&orow[jb..jb + JB]);
            kernel::gemm::accumulate_block(&mut acc, arow, b, ldb, jb);
            orow[jb..jb + JB].copy_from_slice(&acc);
            jb += JB;
        }
        while jb + JH <= n {
            let mut acc = [0.0f32; JH];
            acc.copy_from_slice(&orow[jb..jb + JH]);
            kernel::gemm::accumulate_half(&mut acc, arow, b, ldb, jb);
            orow[jb..jb + JH].copy_from_slice(&acc);
            jb += JH;
        }
        if jb < n {
            let orow = &mut orow[jb..];
            for (p, &aip) in arow.iter().enumerate() {
                let brow = &b[p * ldb + jb..p * ldb + n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
    }
}

/// [`gemm_blocked`] scheduled on an [`Executor`]: the `m` output rows are
/// split into one contiguous chunk per worker and each chunk runs the
/// serial kernel. Every output element is produced by exactly the code
/// path [`gemm_blocked`] would run for it — accumulation order per
/// element is unchanged — so the result is **bit-identical** to the
/// serial call for any worker count.
///
/// Each chunk carries its *own* FLOP count (`chunk_flops` of its actual
/// row count — the final chunk is often short) as the executor's
/// per-item work hint, so the small GEMMs of service-style
/// single-request forwards run inline instead of waking pool workers —
/// the pooled backend only dispatches once a product is large enough to
/// amortize the handoff.
///
/// # Panics
///
/// Same contract as [`gemm_blocked`].
#[allow(clippy::too_many_arguments)] // mirrors gemm_blocked's raw-slice contract + executor
pub fn gemm_blocked_on(
    exec: &Executor,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ldb: usize,
) {
    let workers = exec.threads().min(m);
    if workers <= 1 || k == 0 || n == 0 {
        // The serial fallback is a single chunk: one fault event.
        #[cfg(feature = "fault-inject")]
        let fault = mercury_faults::poll(mercury_faults::FaultSite::GemmChunk);
        #[cfg(feature = "fault-inject")]
        chunk_fault_pre(fault);
        gemm_blocked(out, a, b, m, k, n, ldb);
        #[cfg(feature = "fault-inject")]
        chunk_fault_post(fault, out);
        return;
    }
    assert!(ldb >= n, "ldb {ldb} must be at least n {n}");
    assert_eq!(a.len(), m * k, "a must be [m, k]");
    assert_eq!(b.len(), k * ldb, "b must be [k, ldb]");
    assert_eq!(out.len(), m * n, "out must be [m, n]");
    let rows_per = m.div_ceil(workers);
    let jobs: Vec<(&mut [f32], &[f32])> = out
        .chunks_mut(rows_per * n)
        .zip(a.chunks(rows_per * k))
        .collect();
    let work: Vec<usize> = jobs
        .iter()
        .map(|(_, arows)| chunk_flops(arows.len() / k, k, n))
        .collect();
    // Fault events are drawn on the dispatching thread in chunk order,
    // BEFORE the fan-out, so which chunk faults never depends on pool
    // scheduling; the action itself fires on whichever worker runs the
    // chunk.
    #[cfg(feature = "fault-inject")]
    let chunk_faults: Vec<Option<mercury_faults::FaultAction>> = jobs
        .iter()
        .map(|_| mercury_faults::poll(mercury_faults::FaultSite::GemmChunk))
        .collect();
    exec.map_owned_weighted(jobs, &work, |_i, (orows, arows)| {
        #[cfg(feature = "fault-inject")]
        chunk_fault_pre(chunk_faults[_i]);
        let rows = arows.len() / k;
        gemm_blocked(orows, arows, b, rows, k, n, ldb);
        #[cfg(feature = "fault-inject")]
        chunk_fault_post(chunk_faults[_i], orows);
    });
}

/// Applies the pre-compute half of a [`GemmChunk`] fault: `Panic` fires
/// here so the unwind starts on the worker that owns the chunk, exactly
/// where a real in-kernel fault would originate.
///
/// [`GemmChunk`]: mercury_faults::FaultSite::GemmChunk
#[cfg(feature = "fault-inject")]
fn chunk_fault_pre(action: Option<mercury_faults::FaultAction>) {
    if matches!(action, Some(mercury_faults::FaultAction::Panic)) {
        mercury_faults::injected_panic(mercury_faults::FaultSite::GemmChunk);
    }
}

/// Applies the post-compute half of a [`GemmChunk`] fault: `NanPayload`
/// plants a NaN in the chunk's first output slot after the kernel has
/// written real data, modelling a corrupted result rather than a crash.
/// `CorruptTag` has no meaning at the GEMM level and is ignored.
///
/// [`GemmChunk`]: mercury_faults::FaultSite::GemmChunk
#[cfg(feature = "fault-inject")]
fn chunk_fault_post(action: Option<mercury_faults::FaultAction>, orows: &mut [f32]) {
    if matches!(action, Some(mercury_faults::FaultAction::NanPayload)) {
        if let Some(slot) = orows.first_mut() {
            *slot = f32::NAN;
        }
    }
}

/// The dispatch work hint for a GEMM row chunk: `2 · rows · k · n`
/// scalar FLOPs, computed with saturating multiplies so hint arithmetic
/// on absurd dimensions clamps to `usize::MAX` instead of overflowing
/// (the hint only gates pool dispatch — saturation errs toward
/// dispatching, never toward wrapping small).
pub(crate) fn chunk_flops(rows: usize, k: usize, n: usize) -> usize {
    2usize
        .saturating_mul(rows)
        .saturating_mul(k)
        .saturating_mul(n)
}

/// Blocked matrix multiplication of a `[m, k]` tensor by a `[k, n]` tensor.
///
/// Same contract as [`matmul`], computed via [`gemm_blocked`]: tiled over
/// the inner dimension for cache locality, with per-element accumulation in
/// ascending `k` order (bit-identical to [`dot`] of row and column).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D operands and
/// [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm_blocked(out.data_mut(), a.data(), b.data(), m, k, n, n);
    Ok(out)
}

/// [`matmul_blocked`] scheduled on an [`Executor`] (row-sharded via
/// [`gemm_blocked_on`]; bit-identical to the serial call).
///
/// # Errors
///
/// Same contract as [`matmul_blocked`].
pub fn matmul_blocked_on(exec: &Executor, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm_blocked_on(exec, out.data_mut(), a.data(), b.data(), m, k, n, n);
    Ok(out)
}

/// Transpose of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D input.
pub fn transpose(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (r, c) = (t.shape()[0], t.shape()[1]);
    let mut out = Tensor::zeros(&[c, r]);
    for i in 0..r {
        for j in 0..c {
            out.set(&[j, i], t.at(&[i, j]));
        }
    }
    Ok(out)
}

/// Numerically stable softmax over the last axis of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-2-D input.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    let mut out = t.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Rectified linear unit applied elementwise.
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|x| x.max(0.0))
}

/// Derivative mask of ReLU: 1 where the pre-activation was positive.
pub fn relu_grad_mask(pre_activation: &Tensor) -> Tensor {
    pre_activation.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[3, 3], &mut rng);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        let prod = matmul(&a, &eye).unwrap();
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            matmul(&a, &b).unwrap_err(),
            TensorError::ShapeMismatch { .. }
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &b).unwrap_err(),
            TensorError::RankMismatch { .. }
        ));
    }

    #[test]
    fn matmul_blocked_matches_matmul() {
        let mut rng = Rng::new(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 4),
            (17, 130, 9),
            (64, 9, 20),
        ] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let plain = matmul(&a, &b).unwrap();
            let blocked = matmul_blocked(&a, &b).unwrap();
            assert_eq!(blocked.shape(), plain.shape());
            for (x, y) in blocked.data().iter().zip(plain.data()) {
                assert!((x - y).abs() < 1e-4, "blocked {x} vs plain {y}");
            }
        }
    }

    #[test]
    fn gemm_blocked_is_bit_identical_to_dot() {
        // The engine's equivalence contract depends on gemm accumulating in
        // the same order as `dot`: identical bits, not merely close.
        let mut rng = Rng::new(18);
        let (m, k, n) = (7, 200, 13);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bt = transpose(&b).unwrap();
        let mut out = vec![0.0; m * n];
        gemm_blocked(&mut out, a.data(), b.data(), m, k, n, n);
        for i in 0..m {
            for j in 0..n {
                let want = dot(
                    &a.data()[i * k..(i + 1) * k],
                    &bt.data()[j * k..(j + 1) * k],
                );
                assert!(
                    out[i * n + j].to_bits() == want.to_bits(),
                    "gemm[{i},{j}] = {} differs in bits from dot {}",
                    out[i * n + j],
                    want
                );
            }
        }
    }

    #[test]
    fn gemm_blocked_column_prefix_via_ldb() {
        // Multiplying against the first n columns of a wider matrix (the
        // signature-prefix case) must agree with a copied-out prefix.
        let mut rng = Rng::new(19);
        let (m, k, full, n) = (5, 9, 24, 10);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, full], &mut rng);
        let mut prefix = Tensor::zeros(&[k, n]);
        for p in 0..k {
            for j in 0..n {
                prefix.set(&[p, j], b.at(&[p, j]));
            }
        }
        let mut wide = vec![0.0; m * n];
        gemm_blocked(&mut wide, a.data(), b.data(), m, k, n, full);
        let narrow = matmul_blocked(&a, &prefix).unwrap();
        assert_eq!(wide.as_slice(), narrow.data());
    }

    #[test]
    fn gemm_blocked_on_is_bit_identical_for_any_worker_count() {
        let mut rng = Rng::new(21);
        let (m, k, n) = (23, 57, 19);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let mut serial = vec![0.0; m * n];
        gemm_blocked(&mut serial, a.data(), b.data(), m, k, n, n);
        for threads in [1, 2, 3, 8, 64] {
            let exec = Executor::threaded(threads);
            let mut sharded = vec![0.0; m * n];
            gemm_blocked_on(&exec, &mut sharded, a.data(), b.data(), m, k, n, n);
            for (i, (s, p)) in sharded.iter().zip(&serial).enumerate() {
                assert!(
                    s.to_bits() == p.to_bits(),
                    "{threads} threads: element {i} differs ({s} vs {p})"
                );
            }
        }
    }

    #[test]
    fn gemm_blocked_on_handles_degenerate_shapes() {
        // m=0 must be a no-op on every backend; empty chunk vectors and
        // zero-length slices must not panic the hint math.
        for exec in [Executor::serial(), Executor::threaded(4)] {
            let mut out: Vec<f32> = Vec::new();
            gemm_blocked_on(&exec, &mut out, &[], &[0.0; 15], 0, 3, 5, 5);
            assert!(out.is_empty());
            // k=0 and n=0 short-circuit to the serial kernel.
            let mut out = vec![1.0f32; 6];
            gemm_blocked_on(&exec, &mut out, &[], &[], 2, 0, 3, 3);
            assert_eq!(out, vec![1.0; 6]);
            let mut out: Vec<f32> = Vec::new();
            gemm_blocked_on(&exec, &mut out, &[0.0; 8], &[0.0; 12], 2, 4, 0, 3);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn short_tail_chunk_carries_its_own_hint() {
        // threads=2, m=3 → rows_per=2: chunks of 2 and 1 rows. With
        // k=64, n=80 the true work is 20480 + 10240 = 30720, under the
        // 32768 dispatch floor — the old uniform hint (2 × 20480 = 40960)
        // dispatched this region on the tail chunk's padding alone.
        let (m, k, n) = (3, 64, 80);
        let mut rng = Rng::new(23);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let mut serial = vec![0.0; m * n];
        gemm_blocked(&mut serial, a.data(), b.data(), m, k, n, n);
        let exec = Executor::threaded(2);
        let before = exec.pool_stats().unwrap();
        let mut sharded = vec![0.0; m * n];
        gemm_blocked_on(&exec, &mut sharded, a.data(), b.data(), m, k, n, n);
        let after = exec.pool_stats().unwrap();
        assert_eq!(
            after.regions_dispatched, before.regions_dispatched,
            "under-threshold region must not wake the pool"
        );
        assert_eq!(after.regions_inlined, before.regions_inlined + 1);
        for (s, p) in sharded.iter().zip(&serial) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        // One more row tips the true total (40960) over the floor.
        let (m2, k2, n2) = (4, 64, 80);
        let a = Tensor::randn(&[m2, k2], &mut rng);
        let b = Tensor::randn(&[k2, n2], &mut rng);
        let mut out = vec![0.0; m2 * n2];
        gemm_blocked_on(&exec, &mut out, a.data(), b.data(), m2, k2, n2, n2);
        assert_eq!(
            exec.pool_stats().unwrap().regions_dispatched,
            after.regions_dispatched + 1
        );
    }

    #[test]
    fn chunk_flops_saturates_instead_of_overflowing() {
        // Overflow-shaped dimensions: 2·rows·k·n far exceeds usize::MAX.
        // The hint must clamp (erring toward dispatch), not wrap.
        let huge = 1usize << 40;
        assert_eq!(chunk_flops(huge, huge, huge), usize::MAX);
        assert_eq!(chunk_flops(usize::MAX, 1, 1), usize::MAX);
        assert_eq!(chunk_flops(0, huge, huge), 0);
        assert_eq!(chunk_flops(3, 4, 5), 120);
    }

    #[test]
    fn matmul_blocked_on_matches_serial_including_prefix_case() {
        let mut rng = Rng::new(22);
        let exec = Executor::threaded(4);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (5, 30, 7), (40, 9, 24)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let serial = matmul_blocked(&a, &b).unwrap();
            let sharded = matmul_blocked_on(&exec, &a, &b).unwrap();
            assert_eq!(serial, sharded);
        }
        // Error paths agree too.
        assert!(
            matmul_blocked_on(&exec, &Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2])).is_err()
        );
        assert!(matmul_blocked_on(&exec, &Tensor::zeros(&[3]), &Tensor::zeros(&[3, 2])).is_err());
    }

    #[test]
    #[should_panic(expected = "ldb")]
    fn gemm_blocked_rejects_narrow_ldb() {
        let mut out = vec![0.0; 4];
        gemm_blocked(&mut out, &[1.0, 2.0], &[1.0, 2.0], 2, 1, 2, 1);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn(&[4, 7], &mut rng);
        let tt = transpose(&transpose(&t).unwrap()).unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_swaps_indices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = transpose(&t).unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 0]), t.at(&[0, 2]));
        assert_eq!(tt.at(&[1, 1]), t.at(&[1, 1]));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(5);
        let t = Tensor::randn(&[3, 6], &mut rng);
        let s = softmax_rows(&t).unwrap();
        for r in 0..3 {
            let sum: f32 = (0..6).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for c in 0..6 {
                assert!(s.at(&[r, c]) > 0.0);
            }
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let t = Tensor::from_vec(vec![1000.0, 1000.0], &[1, 2]).unwrap();
        let s = softmax_rows(&t).unwrap();
        assert!((s.at(&[0, 0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn relu_and_mask_agree() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap();
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 3.0]);
        assert_eq!(relu_grad_mask(&t).data(), &[0.0, 0.0, 1.0]);
    }
}
