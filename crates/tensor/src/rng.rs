//! Deterministic random number generation for reproducible experiments.
//!
//! Every stochastic component in the workspace (random projection matrices,
//! synthetic workloads, weight initialisation) draws from [`Rng`], a
//! SplitMix64 generator with Box–Muller normal sampling. A single `u64` seed
//! therefore pins down an entire experiment.
//!
//! SplitMix64 is used instead of an external crate because the experiments
//! need nothing beyond uniform `u64`/`f32` and normal `f32` draws, and a
//! 20-line generator keeps the substrate dependency-free.

/// A deterministic pseudo-random generator (SplitMix64 core).
///
/// # Examples
///
/// ```
/// use mercury_tensor::rng::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

/// An opaque snapshot of an [`Rng`]'s complete state.
///
/// Because every draw is a pure function of the state, a `(inputs,
/// RngState)` pair keys any derivation deterministically — which is what
/// lets callers memoize expensive synthesized sequences
/// (e.g. `VectorStream::cluster_ids` in `mercury-workloads`) and replay
/// them with [`Rng::restore`] as if they had been drawn afresh. The
/// snapshot is `Hash`/`Eq` so it can serve directly as a memo key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngState {
    state: u64,
    /// The Box–Muller spare, stored as raw bits so the snapshot stays
    /// `Eq`/`Hash`.
    spare_bits: Option<u32>,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed,
            spare_normal: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative range reduction; bias is negligible for the bounds
        // used in this workspace (all far below 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as usize
    }

    /// Returns a standard-normal `f32` (mean 0, variance 1) via Box–Muller.
    pub fn next_normal(&mut self) -> f32 {
        if let Some(spare) = self.spare_normal.take() {
            return spare;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some((radius * angle.sin()) as f32);
        (radius * angle.cos()) as f32
    }

    /// Returns a normal `f32` with the given mean and standard deviation.
    pub fn next_normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.next_normal()
    }

    /// Returns a uniform `f32` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn next_range(&mut self, low: f32, high: f32) -> f32 {
        assert!(low <= high, "low must not exceed high");
        low + (high - low) * self.next_f32()
    }

    /// Snapshots the generator's complete state (see [`RngState`]).
    pub fn checkpoint(&self) -> RngState {
        RngState {
            state: self.state,
            spare_bits: self.spare_normal.map(f32::to_bits),
        }
    }

    /// Restores a state captured by [`checkpoint`](Self::checkpoint); the
    /// generator continues exactly as if the intervening draws had been
    /// performed on it.
    pub fn restore(&mut self, snapshot: RngState) {
        self.state = snapshot.state;
        self.spare_normal = snapshot.spare_bits.map(f32::from_bits);
    }

    /// Derives an independent child generator; useful for giving each layer
    /// or experiment arm its own stream while remaining reproducible.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(77);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "normal mean {mean} should be ~0");
        assert!(
            (var - 1.0).abs() < 0.03,
            "normal variance {var} should be ~1"
        );
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.next_below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Rng::new(0).next_below(0);
    }

    #[test]
    fn checkpoint_restore_replays_the_stream() {
        let mut rng = Rng::new(31);
        rng.next_normal(); // leave a Box–Muller spare in flight
        let snap = rng.checkpoint();
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let normal = rng.next_normal();
        rng.restore(snap);
        // A restored state compares equal to its snapshot (memo-key
        // contract) and replays the exact same stream.
        assert_eq!(snap, rng.checkpoint());
        let replay: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(draws, replay);
        assert_eq!(normal, rng.next_normal());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(10);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(42);
        let mut data: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(8);
        for _ in 0..1000 {
            let x = rng.next_range(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }
}
