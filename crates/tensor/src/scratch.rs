//! Per-thread recycling arenas for hot-path scratch buffers.
//!
//! The pooled executor's worst enemy on real multi-core hosts is not the
//! dispatch wakeup — it is every worker hammering the global allocator
//! for the same per-region scratch (`im2col` patch buffers, packed GEMM
//! panels, per-channel contribution rows), which serializes the workers
//! on the allocator's locks exactly when they should be independent. The
//! `bench_tune` width sweeps surface this as pool widths that stop
//! scaling long before the core count.
//!
//! [`ScratchF32`] is the fix: a `Vec<f32>` whose backing allocation is
//! drawn from (and returned to) a **thread-local** free list. A pool
//! worker that runs one conv region allocates its scratch once; every
//! later region the same worker runs reuses those allocations without
//! ever touching the global allocator — and without any cross-thread
//! coordination, because the free list is per thread. Dropping a buffer
//! on a different thread than the one that took it is *correct* (it just
//! migrates the allocation to the dropping thread's list), merely not
//! the fast path — which is why hot callers keep their scratch inside
//! the worker closure that created it.
//!
//! Determinism is untouched by design: a recycled buffer is always
//! handed out **empty** (`len == 0`, capacity whatever history left), so
//! `resize`/`extend` fill every element the caller reads. Only
//! capacities — never contents — survive recycling.
//!
//! # Examples
//!
//! ```
//! use mercury_tensor::scratch::ScratchF32;
//!
//! {
//!     let mut buf = ScratchF32::take();
//!     buf.resize(1024, 0.0);
//!     buf[7] = 3.5;
//! } // dropped: the 1 KiB allocation parks on this thread's free list
//!
//! let again = ScratchF32::take(); // no allocator call
//! assert_eq!(again.len(), 0, "recycled buffers always start empty");
//! assert!(again.capacity() >= 1024);
//! ```

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Most buffers one thread's free list parks. Beyond this, extra drops
/// fall through to the real allocator — a bound, not a budget: the hot
/// paths hold well under this many scratch buffers at once.
const MAX_POOLED_BUFS: usize = 32;

/// Most total capacity (in `f32` elements, 256 MiB) one thread's free
/// list retains, so a single giant region cannot pin its peak footprint
/// on every worker forever.
const MAX_POOLED_ELEMS: usize = 64 << 20;

thread_local! {
    static FREE_LIST: RefCell<FreeList> = const {
        RefCell::new(FreeList {
            bufs: Vec::new(),
            pooled_elems: 0,
            takes: 0,
            reuses: 0,
        })
    };
}

struct FreeList {
    bufs: Vec<Vec<f32>>,
    /// Summed capacity of every parked buffer.
    pooled_elems: usize,
    takes: u64,
    reuses: u64,
}

/// Counters of one thread's arena traffic (see
/// [`thread_stats`]) — the observability hook `bench_tune` and loadgen
/// print so allocator pressure is auditable, not guessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Buffers handed out on this thread ([`ScratchF32::take`] calls).
    pub takes: u64,
    /// Hand-outs served from the free list instead of the allocator.
    pub reuses: u64,
}

/// This thread's arena counters since process start.
pub fn thread_stats() -> ScratchStats {
    FREE_LIST.with(|fl| {
        let fl = fl.borrow();
        ScratchStats {
            takes: fl.takes,
            reuses: fl.reuses,
        }
    })
}

/// A `Vec<f32>` drawn from the current thread's recycling arena and
/// returned to the dropping thread's arena. Derefs to `Vec<f32>`, so it
/// drops into existing `resize`/`clear`/slice call sites unchanged.
///
/// `Default` is [`take`](Self::take), so `ScratchF32` slots directly
/// into `Executor::map_with`-style `Default`-built scratch states.
#[derive(Debug)]
pub struct ScratchF32 {
    /// `Some` until dropped; the option exists only so `Drop` can move
    /// the vec back to the free list.
    buf: Option<Vec<f32>>,
}

impl ScratchF32 {
    /// An empty buffer, reusing a previously dropped allocation when the
    /// thread's free list has one (largest-capacity first).
    pub fn take() -> Self {
        let buf = FREE_LIST.with(|fl| {
            let mut fl = fl.borrow_mut();
            fl.takes += 1;
            match fl.bufs.pop() {
                Some(buf) => {
                    fl.reuses += 1;
                    fl.pooled_elems -= buf.capacity();
                    buf
                }
                None => Vec::new(),
            }
        });
        ScratchF32 { buf: Some(buf) }
    }

    /// [`take`](Self::take), then `resize(len, 0.0)` — the common "give
    /// me `len` zeros" shape as one call.
    pub fn zeroed(len: usize) -> Self {
        let mut s = Self::take();
        s.resize(len, 0.0);
        s
    }
}

impl Default for ScratchF32 {
    fn default() -> Self {
        Self::take()
    }
}

impl Clone for ScratchF32 {
    fn clone(&self) -> Self {
        let mut copy = Self::take();
        copy.extend_from_slice(self);
        copy
    }
}

impl Deref for ScratchF32 {
    type Target = Vec<f32>;

    fn deref(&self) -> &Vec<f32> {
        self.buf.as_ref().expect("present until drop")
    }
}

impl DerefMut for ScratchF32 {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        self.buf.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchF32 {
    fn drop(&mut self) {
        let Some(mut buf) = self.buf.take() else {
            return;
        };
        if buf.capacity() == 0 {
            return; // nothing worth parking
        }
        // Hand recycled buffers out empty — stale contents must never be
        // observable (callers' `resize(n, 0.0)` only fills *new* slots).
        buf.clear();
        let _ = FREE_LIST.try_with(|fl| {
            // `try_with`: during thread teardown the free list may
            // already be gone; the buffer then just frees normally.
            let mut fl = fl.borrow_mut();
            if fl.bufs.len() < MAX_POOLED_BUFS
                && fl.pooled_elems.saturating_add(buf.capacity()) <= MAX_POOLED_ELEMS
            {
                fl.pooled_elems += buf.capacity();
                fl.bufs.push(std::mem::take(&mut buf));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity_but_never_contents() {
        let cap = {
            let mut buf = ScratchF32::take();
            buf.resize(4096, 1.5);
            buf.capacity()
        };
        let stats = thread_stats();
        let buf = ScratchF32::take();
        assert_eq!(thread_stats().takes, stats.takes + 1);
        assert_eq!(thread_stats().reuses, stats.reuses + 1, "free list hit");
        assert!(buf.capacity() >= cap, "the allocation came back");
        assert!(buf.is_empty(), "…but none of the 1.5s did");
    }

    #[test]
    fn zeroed_is_all_zeros_even_after_dirty_history() {
        {
            let mut dirty = ScratchF32::take();
            dirty.resize(100, 7.0);
        }
        let z = ScratchF32::zeroed(200);
        assert_eq!(z.len(), 200);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn default_and_clone_go_through_the_arena() {
        let mut a = ScratchF32::default();
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(&b[..], &[1.0, 2.0, 3.0]);
        assert!(thread_stats().takes >= 2);
    }

    #[test]
    fn vec_api_passes_through_the_deref() {
        let mut buf = ScratchF32::take();
        buf.resize(8, 0.0);
        buf[3] = 9.0;
        // &ScratchF32 coerces to &[f32] (and &mut to &mut Vec<f32>), so
        // existing kernel signatures accept it unchanged.
        fn sum(s: &[f32]) -> f32 {
            s.iter().sum()
        }
        fn push(v: &mut Vec<f32>) {
            v.push(1.0);
        }
        assert_eq!(sum(&buf), 9.0);
        push(&mut buf);
        assert_eq!(buf.len(), 9);
    }

    #[test]
    fn cross_thread_drop_migrates_instead_of_corrupting() {
        let mut buf = ScratchF32::take();
        buf.resize(64, 2.0);
        let handle = std::thread::spawn(move || {
            assert_eq!(buf[63], 2.0);
            drop(buf); // parks on the spawned thread's list — no panic,
                       // no cross-thread free-list contention
            thread_stats().takes
        });
        handle.join().unwrap();
    }

    #[test]
    fn oversized_buffers_fall_through_the_retention_cap() {
        // A buffer bigger than the whole per-thread byte cap is freed,
        // not parked.
        {
            let mut huge = ScratchF32::take();
            huge.reserve(MAX_POOLED_ELEMS + 1);
        }
        let before = thread_stats();
        {
            let mut small = ScratchF32::take();
            small.resize(16, 0.0);
        }
        let _back = ScratchF32::take();
        let after = thread_stats();
        // The small buffer recycles; the huge one was not retained ahead
        // of it (capacity ≥ cap+1 would have been reused here otherwise).
        assert_eq!(after.takes, before.takes + 2);
        assert!(_back.capacity() < MAX_POOLED_ELEMS);
    }
}
