use crate::rng::Rng;
use crate::TensorError;
use std::fmt;

/// An owned, dense, row-major `f32` tensor.
///
/// `Tensor` is deliberately simple: the MERCURY workloads need shape-safe
/// storage, convolution, and matrix multiplication — not autograd or views.
/// All shape-sensitive constructors validate their arguments and return
/// [`TensorError`] on misuse.
///
/// # Examples
///
/// ```
/// use mercury_tensor::Tensor;
///
/// # fn main() -> Result<(), mercury_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.shape(), &[2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` differs
    /// from the product of `shape`, and [`TensorError::ZeroDim`] if any
    /// dimension is zero.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        if shape.contains(&0) {
            return Err(TensorError::ZeroDim);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; shapes are construction-time
    /// constants in this workspace, so this is treated as a programming
    /// error rather than a recoverable one.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive, got {shape:?}"
        );
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with a constant.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Creates a tensor of standard-normal samples.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Self {
        let mut t = Tensor::zeros(shape);
        for v in &mut t.data {
            *v = rng.next_normal();
        }
        t
    }

    /// Creates a tensor of uniform samples in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `low > high`.
    pub fn rand_uniform(shape: &[usize], low: f32, high: f32, rng: &mut Rng) -> Self {
        let mut t = Tensor::zeros(shape);
        for v in &mut t.data {
            *v = rng.next_range(low, high);
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Converts a multidimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} (size {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Reads the element at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Writes the element at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ, and [`TensorError::ZeroDim`] for zero-sized dimensions.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Multiplies every element by a scalar, producing a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds `factor * other` into `self` (AXPY), used by SGD updates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, factor: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in the flat buffer.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the flattened tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean distance between two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn distance(&self, other: &Tensor) -> Result<f32, TensorError> {
        Ok(self.sub(other)?.norm_sq().sqrt())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elements])", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_shape() {
        let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_vec_rejects_zero_dim() {
        assert_eq!(
            Tensor::from_vec(vec![], &[0, 3]).unwrap_err(),
            TensorError::ZeroDim
        );
    }

    #[test]
    fn row_major_indexing() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[0, 0, 3]), 3.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        Tensor::zeros(&[2, 2]).at(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn indexing_wrong_rank_panics() {
        Tensor::zeros(&[2, 2]).at(&[0]);
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.at(&[2, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(
            a.add(&b).unwrap_err(),
            TensorError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.argmax(), 3);
        assert_eq!(t.norm_sq(), 1.0 + 9.0 + 4.0 + 16.0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.distance(&b).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::new(11);
        let mut r2 = Rng::new(11);
        let a = Tensor::randn(&[4, 4], &mut r1);
        let b = Tensor::randn(&[4, 4], &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_output_is_never_empty() {
        let t = Tensor::zeros(&[100]);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("shape=[100]"));
        assert!(dbg.contains("100 elements"));
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let relu = t.map(|x| x.max(0.0));
        assert_eq!(relu.data(), &[0.0, 2.0]);
    }
}
