//! Host-calibrated dispatch tuning: the [`DispatchTuning`] knob set the
//! executor consumes at construction, and the versioned [`TuneProfile`]
//! JSON document that carries measured values for those knobs from a
//! `bench_tune` calibration run to a production process.
//!
//! # Why these knobs exist
//!
//! The pooled executor's dispatch decisions — "is this region worth a
//! worker wakeup?", "is this probe stream long enough to partition by
//! bank?" — were originally compile-time constants tuned on a 1-core
//! container. Whether reuse/compute scheduling actually pays is a
//! property of the *host* (wakeup latency, core count, allocator
//! behaviour), so every knob is now data: a calibration pass
//! (`cargo run -p mercury-bench --bin bench_tune`) sweeps each knob on
//! the current machine and emits a profile; the executor resolves its
//! tuning **once at construction** with the precedence
//!
//! 1. the profile named by `MERCURY_TUNE_PROFILE` (a path; loading
//!    failures abort loudly, like an invalid `MERCURY_EXECUTOR`),
//! 2. the committed per-core-count defaults in
//!    [`DispatchTuning::committed_for_cores`] (folded in from the weekly
//!    `bench-multicore` 4-core artifacts),
//! 3. the historical constants (the 1-core seeds).
//!
//! A profile may set any subset of the knobs; unset knobs fall through to
//! the next layer, and unknown fields are ignored so newer tools can
//! annotate profiles older binaries still read.
//!
//! Tuning values change **scheduling only** — every tuning point is
//! bit-identical to serial execution (pinned across a grid of extreme
//! tunings by `tests/parallel_determinism.rs`).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::exec::POOL_DISPATCH_MIN_WORK;

/// The current [`TuneProfile`] schema version. Loaders reject any other
/// value: tuning silently misread as zero would disable dispatch
/// everywhere, which is exactly the failure calibration exists to remove.
pub const TUNE_PROFILE_VERSION: u64 = 1;

/// Historical default for [`DispatchTuning::probe_work_units`]: the rough
/// cost of one MCACHE probe (hash + set scan + insert) in executor work
/// units (~scalar FLOPs), as estimated on the original 1-core container.
pub const DEFAULT_PROBE_WORK_UNITS: usize = 64;

/// Historical default for [`DispatchTuning::parallel_probe_min`]: below
/// this many probes per batch, partitioning a signature stream by home
/// bank costs more than the fan-out saves.
pub const DEFAULT_PARALLEL_PROBE_MIN: usize = 64;

/// The runtime dispatch knob set one [`Executor`](crate::exec::Executor)
/// carries. Resolved once at executor construction (see
/// [`DispatchTuning::resolved`]) and shared by every clone; engines read
/// it back through [`Executor::tuning`](crate::exec::Executor::tuning) so
/// their work-size hints use the same calibrated units the dispatch gate
/// compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DispatchTuning {
    /// Minimum estimated region work (in ~scalar-FLOP units) for a
    /// `*_sized` region to be handed to the worker pool instead of
    /// running inline on the caller.
    pub dispatch_min_work: usize,
    /// Estimated cost of one MCACHE probe in the same work units; feeds
    /// the per-bank probe fan-out hints and the conv channel hints.
    pub probe_work_units: usize,
    /// Minimum signatures per batch before a banked probe stream is
    /// partitioned across bank shards at all.
    pub parallel_probe_min: usize,
    /// The widest pool that measured as useful on this host. Auto-sized
    /// executors (`threads: 0`) use `min(available_parallelism, this)`;
    /// explicitly pinned widths are **not** capped (determinism suites
    /// deliberately oversubscribe).
    pub max_pool_width: usize,
}

/// The 1-core-seed constants — layer 3 of the resolution chain.
pub const DEFAULT_TUNING: DispatchTuning = DispatchTuning {
    dispatch_min_work: POOL_DISPATCH_MIN_WORK,
    probe_work_units: DEFAULT_PROBE_WORK_UNITS,
    parallel_probe_min: DEFAULT_PARALLEL_PROBE_MIN,
    max_pool_width: usize::MAX,
};

impl Default for DispatchTuning {
    fn default() -> Self {
        DEFAULT_TUNING
    }
}

impl DispatchTuning {
    /// The tuning for the current process: `MERCURY_TUNE_PROFILE` if set,
    /// else the committed defaults for this machine's core count, else
    /// the constants. Called once per executor construction.
    ///
    /// # Panics
    ///
    /// Panics — naming the path and the typed error — when
    /// `MERCURY_TUNE_PROFILE` is set but the file cannot be read or
    /// parsed. A calibrated run that silently fell back to guesses would
    /// taint whatever comparison the operator was running.
    pub fn resolved() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        match std::env::var("MERCURY_TUNE_PROFILE") {
            Err(_) => Self::resolve(None, cores),
            Ok(path) => match TuneProfile::load(&path) {
                Ok(profile) => Self::resolve(Some(&profile), cores),
                Err(e) => panic!("MERCURY_TUNE_PROFILE ({path}): {e}"),
            },
        }
    }

    /// The pure resolution chain, split from the environment so the
    /// precedence is testable: `profile` knobs override the committed
    /// defaults for `cores`, which override the constants. Knobs a
    /// profile leaves unset fall through per knob, not per layer.
    pub fn resolve(profile: Option<&TuneProfile>, cores: usize) -> Self {
        let base = Self::committed_for_cores(cores).unwrap_or(DEFAULT_TUNING);
        match profile {
            None => base,
            Some(p) => p.overlay(base),
        }
    }

    /// Committed defaults for an **exact** core count, folded in from the
    /// weekly `bench-multicore` artifacts (the 4-core hosted runner is
    /// the only machine with an accumulated history; other core counts
    /// fall through to the constants until their artifacts exist). The
    /// 4-core record shows the pool wakeup amortizing at roughly half
    /// the 1-core threshold, probes costing ~48 scalar-FLOP units, bank
    /// fan-out paying from ~48 probes, and no width beyond the 4 real
    /// cores ever helping.
    pub fn committed_for_cores(cores: usize) -> Option<Self> {
        match cores {
            4 => Some(DispatchTuning {
                dispatch_min_work: 16 * 1024,
                probe_work_units: 48,
                parallel_probe_min: 48,
                max_pool_width: 4,
            }),
            _ => None,
        }
    }

    /// Validates every knob is usable (all must be ≥ 1: a zero dispatch
    /// floor dispatches empty regions, zero probe units erase probe
    /// streams from every hint, a zero-width pool cannot exist).
    ///
    /// # Errors
    ///
    /// [`TuneProfileError::BadValue`] naming the offending field.
    pub fn validate(&self) -> Result<(), TuneProfileError> {
        for (field, value) in [
            ("dispatch_min_work", self.dispatch_min_work),
            ("probe_work_units", self.probe_work_units),
            ("parallel_probe_min", self.parallel_probe_min),
            ("max_pool_width", self.max_pool_width),
        ] {
            if value == 0 {
                return Err(TuneProfileError::BadValue {
                    field,
                    reason: "must be a positive integer".to_string(),
                });
            }
        }
        Ok(())
    }
}

/// One measured sweep curve: `(swept value, median nanoseconds)` points,
/// so a profile records not just the chosen knob but the crossover
/// evidence behind it (`bench_tune` emits one curve per sweep leg, e.g.
/// `dispatch/inline` next to `dispatch/pooled`).
pub type TuneCurve = Vec<(f64, f64)>;

/// A versioned, host-calibrated tuning document: per-knob best values
/// (each optional — unset knobs fall through to committed defaults /
/// constants) plus the measured crossover curves they were read from.
///
/// # Examples
///
/// ```
/// use mercury_tensor::tune::{DispatchTuning, TuneProfile};
///
/// let json = r#"{
///     "version": 1,
///     "cores": 4,
///     "probe_work_units": 80,
///     "a_future_field": {"ignored": [1, 2]}
/// }"#;
/// let profile = TuneProfile::from_json(json).unwrap();
/// let tuning = DispatchTuning::resolve(Some(&profile), 1);
/// assert_eq!(tuning.probe_work_units, 80);     // from the profile
/// assert_eq!(tuning.parallel_probe_min, 64);   // fell through
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TuneProfile {
    /// Core count of the host the profile was calibrated on (recorded
    /// for artifact provenance; resolution does not match on it — the
    /// operator pointing `MERCURY_TUNE_PROFILE` at a profile is the
    /// statement that it applies).
    pub cores: Option<usize>,
    /// Calibrated [`DispatchTuning::dispatch_min_work`], if measured.
    pub dispatch_min_work: Option<usize>,
    /// Calibrated [`DispatchTuning::probe_work_units`], if measured.
    pub probe_work_units: Option<usize>,
    /// Calibrated [`DispatchTuning::parallel_probe_min`], if measured.
    pub parallel_probe_min: Option<usize>,
    /// Calibrated [`DispatchTuning::max_pool_width`], if measured.
    pub max_pool_width: Option<usize>,
    /// The measured crossover curves, keyed `sweep/leg`.
    pub curves: BTreeMap<String, TuneCurve>,
}

impl TuneProfile {
    /// Applies this profile's set knobs on top of `base`.
    pub fn overlay(&self, base: DispatchTuning) -> DispatchTuning {
        DispatchTuning {
            dispatch_min_work: self.dispatch_min_work.unwrap_or(base.dispatch_min_work),
            probe_work_units: self.probe_work_units.unwrap_or(base.probe_work_units),
            parallel_probe_min: self.parallel_probe_min.unwrap_or(base.parallel_probe_min),
            max_pool_width: self.max_pool_width.unwrap_or(base.max_pool_width),
        }
    }

    /// Parses a profile from its JSON text.
    ///
    /// Unknown fields (of any JSON shape) are ignored; missing knobs stay
    /// `None`. The `version` field is required and must equal
    /// [`TUNE_PROFILE_VERSION`]; knob values must be positive integers.
    ///
    /// # Errors
    ///
    /// The [`TuneProfileError`] variant describing the first problem:
    /// malformed JSON, a missing/unsupported version, or a bad knob
    /// value.
    pub fn from_json(text: &str) -> Result<Self, TuneProfileError> {
        let value = json::parse(text)?;
        let json::Value::Object(fields) = value else {
            return Err(TuneProfileError::Parse {
                offset: 0,
                message: "profile root must be a JSON object".to_string(),
            });
        };
        let mut profile = TuneProfile::default();
        let mut version: Option<u64> = None;
        for (key, value) in &fields {
            match key.as_str() {
                "version" => {
                    version = Some(value.as_index("version")? as u64);
                }
                "cores" => profile.cores = Some(value.as_index("cores")?),
                "dispatch_min_work" => {
                    profile.dispatch_min_work = Some(value.as_knob("dispatch_min_work")?);
                }
                "probe_work_units" => {
                    profile.probe_work_units = Some(value.as_knob("probe_work_units")?);
                }
                "parallel_probe_min" => {
                    profile.parallel_probe_min = Some(value.as_knob("parallel_probe_min")?);
                }
                "max_pool_width" => {
                    profile.max_pool_width = Some(value.as_knob("max_pool_width")?);
                }
                "curves" => profile.curves = parse_curves(value)?,
                // Unknown fields — tolerated whatever their shape, so a
                // newer bench_tune can annotate profiles this binary
                // still loads.
                _ => {}
            }
        }
        match version {
            None => Err(TuneProfileError::MissingVersion),
            Some(v) if v != TUNE_PROFILE_VERSION => {
                Err(TuneProfileError::UnsupportedVersion { found: v })
            }
            Some(_) => Ok(profile),
        }
    }

    /// Reads and parses the profile at `path`.
    ///
    /// # Errors
    ///
    /// [`TuneProfileError::Io`] when the file cannot be read, else any
    /// [`from_json`](Self::from_json) rejection.
    pub fn load(path: &str) -> Result<Self, TuneProfileError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| TuneProfileError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// Renders the profile as pretty-printed JSON (the exact document
    /// [`from_json`](Self::from_json) round-trips).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {TUNE_PROFILE_VERSION}"));
        let mut knob = |name: &str, v: Option<usize>| {
            if let Some(v) = v {
                out.push_str(&format!(",\n  \"{name}\": {v}"));
            }
        };
        knob("cores", self.cores);
        knob("dispatch_min_work", self.dispatch_min_work);
        knob("probe_work_units", self.probe_work_units);
        knob("parallel_probe_min", self.parallel_probe_min);
        knob("max_pool_width", self.max_pool_width);
        if !self.curves.is_empty() {
            out.push_str(",\n  \"curves\": {");
            for (i, (name, points)) in self.curves.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    \"{name}\": ["));
                let rendered: Vec<String> = points
                    .iter()
                    .map(|&(x, y)| format!("[{}, {}]", json::number(x), json::number(y)))
                    .collect();
                out.push_str(&rendered.join(", "));
                out.push(']');
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// [`TuneProfileError::Io`] on any filesystem failure.
    pub fn save(&self, path: &str) -> Result<(), TuneProfileError> {
        std::fs::write(path, self.to_json()).map_err(|e| TuneProfileError::Io(e.to_string()))
    }
}

fn parse_curves(value: &json::Value) -> Result<BTreeMap<String, TuneCurve>, TuneProfileError> {
    let json::Value::Object(entries) = value else {
        return Err(TuneProfileError::BadValue {
            field: "curves",
            reason: "must be an object of curve-name to [[x, y], ...]".to_string(),
        });
    };
    let mut curves = BTreeMap::new();
    for (name, points) in entries {
        let json::Value::Array(points) = points else {
            return Err(TuneProfileError::BadValue {
                field: "curves",
                reason: format!("curve {name:?} must be an array of [x, y] pairs"),
            });
        };
        let mut curve = Vec::with_capacity(points.len());
        for point in points {
            let pair = match point {
                json::Value::Array(pair) => match pair.as_slice() {
                    [json::Value::Number(x), json::Value::Number(y)] => Some((*x, *y)),
                    _ => None,
                },
                _ => None,
            };
            let Some(pair) = pair else {
                return Err(TuneProfileError::BadValue {
                    field: "curves",
                    reason: format!("curve {name:?} holds a non-[x, y] point"),
                });
            };
            curve.push(pair);
        }
        curves.insert(name.clone(), curve);
    }
    Ok(curves)
}

/// Why a [`TuneProfile`] could not be loaded, with one variant per
/// failure class so callers (and the loud `MERCURY_TUNE_PROFILE` panic)
/// can say exactly what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneProfileError {
    /// The profile file could not be read or written.
    Io(String),
    /// The text is not well-formed JSON (or not an object at the root).
    Parse {
        /// Byte offset of the first offending character.
        offset: usize,
        /// What the parser expected there.
        message: String,
    },
    /// The document has no `version` field — an unversioned document is
    /// indistinguishable from a truncated or foreign one.
    MissingVersion,
    /// The document's schema version is not [`TUNE_PROFILE_VERSION`].
    UnsupportedVersion {
        /// The version the document declared.
        found: u64,
    },
    /// A field held a value outside its domain (zero, negative,
    /// fractional, out of range, or the wrong JSON type).
    BadValue {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for TuneProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneProfileError::Io(e) => write!(f, "profile I/O failed: {e}"),
            TuneProfileError::Parse { offset, message } => {
                write!(f, "malformed profile JSON at byte {offset}: {message}")
            }
            TuneProfileError::MissingVersion => {
                write!(
                    f,
                    "profile has no \"version\" field (expected {TUNE_PROFILE_VERSION})"
                )
            }
            TuneProfileError::UnsupportedVersion { found } => write!(
                f,
                "unsupported profile version {found} (this binary reads {TUNE_PROFILE_VERSION})"
            ),
            TuneProfileError::BadValue { field, reason } => {
                write!(f, "bad value for {field:?}: {reason}")
            }
        }
    }
}

impl Error for TuneProfileError {}

/// A minimal JSON reader/writer for [`TuneProfile`] documents. The crate
/// registry is unreachable in this workspace's build environment, so the
/// profile schema is parsed by hand: full JSON value grammar (objects,
/// arrays, strings with escapes, numbers, booleans, null) over a byte
/// cursor — enough to *skip* arbitrarily-shaped unknown fields, which is
/// what forward compatibility requires.
mod json {
    use super::TuneProfileError;

    /// One parsed JSON value. Numbers are kept as `f64` (every value the
    /// profile schema stores is well inside the 2^53 exact-integer
    /// range, and knob extraction rejects anything that is not).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// This value as a knob setting: a positive integer.
        pub fn as_knob(&self, field: &'static str) -> Result<usize, TuneProfileError> {
            let v = self.as_index(field)?;
            if v == 0 {
                return Err(TuneProfileError::BadValue {
                    field,
                    reason: "must be a positive integer".to_string(),
                });
            }
            Ok(v)
        }

        /// This value as a non-negative integer.
        pub fn as_index(&self, field: &'static str) -> Result<usize, TuneProfileError> {
            let bad = |reason: String| TuneProfileError::BadValue { field, reason };
            let Value::Number(n) = self else {
                return Err(bad(format!("expected an integer, found {self:?}")));
            };
            if !n.is_finite() || n.fract() != 0.0 || *n < 0.0 || *n > (1u64 << 53) as f64 {
                return Err(bad(format!(
                    "{n} is not a representable non-negative integer"
                )));
            }
            Ok(*n as usize)
        }
    }

    /// Renders an `f64` as a JSON number (integral values without the
    /// trailing `.0` Rust's `Debug` would add).
    pub fn number(v: f64) -> String {
        if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 {
            format!("{}", v as i64)
        } else {
            format!("{v:?}")
        }
    }

    /// Parses one complete JSON document.
    pub fn parse(text: &str) -> Result<Value, TuneProfileError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the document"));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, message: &str) -> TuneProfileError {
            TuneProfileError::Parse {
                offset: self.pos,
                message: message.to_string(),
            }
        }

        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, b: u8) -> bool {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), TuneProfileError> {
            if self.eat(b) {
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", b as char)))
            }
        }

        fn value(&mut self) -> Result<Value, TuneProfileError> {
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c.is_ascii_digit() || *c == b'-' => self.num(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, TuneProfileError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(self.err(&format!("expected {word:?}")))
            }
        }

        fn num(&mut self) -> Result<Value, TuneProfileError> {
            let start = self.pos;
            self.eat(b'-');
            while matches!(
                self.bytes.get(self.pos),
                Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| self.err("malformed number"))
        }

        fn string(&mut self) -> Result<String, TuneProfileError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escape = self.bytes.get(self.pos).copied();
                        self.pos += 1;
                        match escape {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| self.err("malformed \\u escape"))?;
                                self.pos += 4;
                                out.push(hex);
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 sequences pass through intact:
                        // the text was a &str, so byte-wise copying of
                        // non-ASCII bytes reassembles valid chars.
                        out.push(b as char);
                        if b < 0x80 {
                            self.pos += 1;
                        } else {
                            out.pop();
                            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                                .map_err(|_| self.err("invalid UTF-8"))?;
                            let c = rest.chars().next().ok_or_else(|| self.err("truncated"))?;
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, TuneProfileError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Value::Array(items));
                }
                self.expect(b',')?;
            }
        }

        fn object(&mut self) -> Result<Value, TuneProfileError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Value::Object(fields));
                }
                self.expect(b',')?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_historical_constants() {
        let t = DispatchTuning::default();
        assert_eq!(t.dispatch_min_work, POOL_DISPATCH_MIN_WORK);
        assert_eq!(t.probe_work_units, DEFAULT_PROBE_WORK_UNITS);
        assert_eq!(t.parallel_probe_min, DEFAULT_PARALLEL_PROBE_MIN);
        assert_eq!(t.max_pool_width, usize::MAX);
        t.validate().unwrap();
    }

    #[test]
    fn committed_defaults_apply_on_exact_core_match_only() {
        let four = DispatchTuning::resolve(None, 4);
        assert_eq!(four, DispatchTuning::committed_for_cores(4).unwrap());
        assert_eq!(four.max_pool_width, 4);
        // No artifact history for these counts — the constants apply.
        for cores in [1, 2, 3, 5, 8, 64] {
            assert_eq!(DispatchTuning::resolve(None, cores), DEFAULT_TUNING);
        }
        // Every committed entry must itself be valid.
        DispatchTuning::committed_for_cores(4)
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn profile_knobs_override_committed_defaults_per_knob() {
        let profile = TuneProfile {
            dispatch_min_work: Some(1000),
            ..TuneProfile::default()
        };
        let t = DispatchTuning::resolve(Some(&profile), 4);
        assert_eq!(t.dispatch_min_work, 1000, "profile wins");
        assert_eq!(t.probe_work_units, 48, "unset knob falls to committed");
        let t1 = DispatchTuning::resolve(Some(&profile), 1);
        assert_eq!(t1.probe_work_units, 64, "…or to the constants");
    }

    #[test]
    fn validate_rejects_zero_knobs() {
        let t = DispatchTuning {
            probe_work_units: 0,
            ..DispatchTuning::default()
        };
        assert!(matches!(
            t.validate(),
            Err(TuneProfileError::BadValue {
                field: "probe_work_units",
                ..
            })
        ));
    }

    #[test]
    fn json_value_grammar_round_trips_unknown_shapes() {
        // Unknown fields of every JSON shape are skipped, not rejected.
        let text = r#"{
            "version": 1,
            "host": "runner-é\n",
            "flags": [true, false, null, -1.5e2],
            "nested": {"deep": [[1, 2], {"x": 3}]},
            "probe_work_units": 80
        }"#;
        let p = TuneProfile::from_json(text).unwrap();
        assert_eq!(p.probe_work_units, Some(80));
        assert_eq!(p.dispatch_min_work, None);
    }

    #[test]
    fn version_is_mandatory_and_checked() {
        assert_eq!(
            TuneProfile::from_json("{}").unwrap_err(),
            TuneProfileError::MissingVersion
        );
        assert_eq!(
            TuneProfile::from_json("{\"version\": 2}").unwrap_err(),
            TuneProfileError::UnsupportedVersion { found: 2 }
        );
    }

    #[test]
    fn bad_values_are_rejected_with_the_field_name() {
        for (text, field) in [
            (
                "{\"version\": 1, \"probe_work_units\": 0}",
                "probe_work_units",
            ),
            (
                "{\"version\": 1, \"dispatch_min_work\": -5}",
                "dispatch_min_work",
            ),
            (
                "{\"version\": 1, \"parallel_probe_min\": 1.5}",
                "parallel_probe_min",
            ),
            (
                "{\"version\": 1, \"max_pool_width\": \"wide\"}",
                "max_pool_width",
            ),
            ("{\"version\": 1, \"curves\": [1]}", "curves"),
            ("{\"version\": 1, \"curves\": {\"c\": [[1]]}}", "curves"),
        ] {
            match TuneProfile::from_json(text) {
                Err(TuneProfileError::BadValue { field: f, .. }) => {
                    assert_eq!(f, field, "{text}")
                }
                other => panic!("{text}: expected BadValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_json_reports_an_offset() {
        for text in ["", "{", "{\"version\": }", "[1,]", "{\"version\": 1} junk"] {
            match TuneProfile::from_json(text) {
                Err(TuneProfileError::Parse { .. }) => {}
                other => panic!("{text:?}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn profile_round_trips_through_json() {
        let mut curves = BTreeMap::new();
        curves.insert(
            "dispatch/pooled".to_string(),
            vec![(1024.0, 5400.0), (32768.0, 21.5)],
        );
        curves.insert("width/gemm_64x512x512".to_string(), vec![(2.0, 1.0e6)]);
        let profile = TuneProfile {
            cores: Some(4),
            dispatch_min_work: Some(16384),
            probe_work_units: Some(48),
            parallel_probe_min: None,
            max_pool_width: Some(4),
            curves,
        };
        let parsed = TuneProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(parsed, profile);
    }

    #[test]
    fn errors_display_without_panicking() {
        for e in [
            TuneProfileError::Io("gone".into()),
            TuneProfileError::Parse {
                offset: 3,
                message: "expected ':'".into(),
            },
            TuneProfileError::MissingVersion,
            TuneProfileError::UnsupportedVersion { found: 9 },
            TuneProfileError::BadValue {
                field: "cores",
                reason: "nope".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
