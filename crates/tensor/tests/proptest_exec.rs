//! Property tests of the executor laws: scheduling never changes
//! results. Every primitive must agree with its serial reference for
//! arbitrary shapes and pool widths — including the row-sharded GEMM,
//! whose agreement must be exact to the bit.

use mercury_tensor::exec::{Executor, ExecutorKind};
use mercury_tensor::rng::Rng;
use mercury_tensor::{ops, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `map_indexed` returns f(0..n) in index order on any pool width.
    #[test]
    fn map_indexed_matches_serial(
        n in 0usize..80,
        threads in 1usize..9,
        salt in 0u64..1000,
    ) {
        let want: Vec<u64> = (0..n).map(|i| i as u64 ^ salt).collect();
        let got = Executor::threaded(threads).map_indexed(n, |i| i as u64 ^ salt);
        prop_assert_eq!(got, want);
    }

    /// `map_owned` consumes items and returns results in item order.
    #[test]
    fn map_owned_preserves_item_order(
        n in 0usize..60,
        threads in 1usize..9,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let got = Executor::threaded(threads).map_owned(items, |i, item| {
            prop_assert_eq!(i, item);
            Ok::<usize, TestCaseError>(item * 3)
        });
        for (i, r) in got.into_iter().enumerate() {
            prop_assert_eq!(r?, i * 3);
        }
    }

    /// The row-sharded GEMM is bit-identical to the serial kernel for
    /// arbitrary shapes and pool widths.
    #[test]
    fn sharded_gemm_is_bit_identical(
        seed in 0u64..500,
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        threads in 1usize..9,
    ) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let mut serial = vec![0.0f32; m * n];
        ops::gemm_blocked(&mut serial, a.data(), b.data(), m, k, n, n);
        let mut sharded = vec![0.0f32; m * n];
        ops::gemm_blocked_on(
            &Executor::threaded(threads),
            &mut sharded,
            a.data(),
            b.data(),
            m,
            k,
            n,
            n,
        );
        for (i, (s, p)) in sharded.iter().zip(&serial).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "element {} differs: {} vs {}", i, s, p
            );
        }
        let mm = ops::matmul_blocked(&a, &b).unwrap();
        let mm_sharded = ops::matmul_blocked_on(&Executor::threaded(threads), &a, &b).unwrap();
        prop_assert_eq!(mm, mm_sharded);
    }

    /// One pool reused across a whole sequence of mixed regions — the
    /// lifecycle `MercurySession` and the model-sim runner rely on —
    /// agrees with the serial reference region by region, and the pool
    /// accounts for every region it saw (dispatched or inlined).
    #[test]
    fn pool_reuse_across_regions_matches_serial(
        threads in 2usize..9,
        sizes in proptest::collection::vec(0usize..40, 1..12),
        salt in 0u64..1000,
    ) {
        let exec = Executor::threaded(threads);
        for (round, &n) in sizes.iter().enumerate() {
            let round = round as u64;
            let want: Vec<u64> = (0..n).map(|i| (i as u64 + round) ^ salt).collect();
            let got = match round % 3 {
                0 => exec.map_indexed(n, |i| (i as u64 + round) ^ salt),
                1 => exec.map_with(n, || (), |i, ()| (i as u64 + round) ^ salt),
                _ => exec.map_owned(
                    (0..n as u64).collect::<Vec<_>>(),
                    |_, item| (item + round) ^ salt,
                ),
            };
            prop_assert_eq!(got, want);
        }
        let stats = exec.pool_stats().expect("threaded backend has a pool");
        prop_assert_eq!(
            stats.regions_dispatched + stats.regions_inlined,
            sizes.len() as u64,
            "every region is accounted for exactly once"
        );
    }

    /// Kind parsing round-trips through resolution sensibly: parsed kinds
    /// always resolve, a serial kind is never parallel, and explicit
    /// widths survive.
    #[test]
    fn parsed_kinds_resolve(threads in 2usize..64) {
        let spec = format!("threaded:{threads}");
        let kind = ExecutorKind::parse(&spec).unwrap();
        prop_assert_eq!(Executor::from_kind(kind).threads(), threads);
        prop_assert_eq!(
            Executor::from_kind(ExecutorKind::parse("serial").unwrap()).threads(),
            1
        );
    }
}
