//! Property-based tests for the tensor substrate.

use mercury_tensor::conv::{self, ConvGeometry};
use mercury_tensor::rng::Rng;
use mercury_tensor::{ops, Tensor};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    // Keep magnitudes small so accumulated float error stays well below the
    // comparison tolerances.
    (-100i32..100).prop_map(|x| x as f32 / 10.0)
}

proptest! {
    #[test]
    fn from_vec_roundtrips(data in proptest::collection::vec(small_f32(), 1..64)) {
        let len = data.len();
        let t = Tensor::from_vec(data.clone(), &[len]).unwrap();
        prop_assert_eq!(t.into_vec(), data);
    }

    #[test]
    fn add_is_commutative(
        data in proptest::collection::vec((small_f32(), small_f32()), 1..64)
    ) {
        let (xs, ys): (Vec<f32>, Vec<f32>) = data.into_iter().unzip();
        let n = xs.len();
        let a = Tensor::from_vec(xs, &[n]).unwrap();
        let b = Tensor::from_vec(ys, &[n]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn scale_distributes_over_add(
        data in proptest::collection::vec((small_f32(), small_f32()), 1..32),
        k in -5i32..5
    ) {
        let k = k as f32;
        let (xs, ys): (Vec<f32>, Vec<f32>) = data.into_iter().unzip();
        let n = xs.len();
        let a = Tensor::from_vec(xs, &[n]).unwrap();
        let b = Tensor::from_vec(ys, &[n]).unwrap();
        let lhs = a.add(&b).unwrap().scale(k);
        let rhs = a.scale(k).add(&b.scale(k)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn dot_is_symmetric(
        data in proptest::collection::vec((small_f32(), small_f32()), 1..64)
    ) {
        let (xs, ys): (Vec<f32>, Vec<f32>) = data.into_iter().unzip();
        let d1 = ops::dot(&xs, &ys);
        let d2 = ops::dot(&ys, &xs);
        prop_assert!((d1 - d2).abs() < 1e-3);
    }

    #[test]
    fn matmul_associates_with_identity(seed in 0u64..1000, m in 1usize..6, n in 1usize..6) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let prod = ops::matmul(&a, &eye).unwrap();
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution(seed in 0u64..1000, r in 1usize..8, c in 1usize..8) {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn(&[r, c], &mut rng);
        let tt = ops::transpose(&ops::transpose(&t).unwrap()).unwrap();
        prop_assert_eq!(t, tt);
    }

    /// conv2d via im2col must agree with a direct quadruple loop.
    #[test]
    fn conv_agrees_with_direct_loops(
        seed in 0u64..500,
        h in 3usize..8,
        w in 3usize..8,
        pad in 0usize..2
    ) {
        let mut rng = Rng::new(seed);
        let input = Tensor::randn(&[2, h, w], &mut rng);
        let kernels = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        if h + 2 * pad < 3 || w + 2 * pad < 3 {
            return Ok(());
        }
        let out = conv::conv2d_multi(&input, &kernels, 1, pad).unwrap();
        let geom = ConvGeometry::new(h, w, 3, 3, 1, pad).unwrap();
        for fi in 0..2 {
            for oy in 0..geom.out_h() {
                for ox in 0..geom.out_w() {
                    let mut acc = 0.0f32;
                    for ch in 0..2 {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let y = oy as isize + ky as isize - pad as isize;
                                let x = ox as isize + kx as isize - pad as isize;
                                if y >= 0 && x >= 0 && (y as usize) < h && (x as usize) < w {
                                    acc += input.at(&[ch, y as usize, x as usize])
                                        * kernels.at(&[fi, ch, ky, kx]);
                                }
                            }
                        }
                    }
                    prop_assert!((out.at(&[fi, oy, ox]) - acc).abs() < 1e-3);
                }
            }
        }
    }

    /// Patch extraction must produce exactly the vectors the direct
    /// definition describes.
    #[test]
    fn patches_agree_with_definition(seed in 0u64..500, h in 3usize..9, w in 3usize..9) {
        let mut rng = Rng::new(seed);
        let channel = Tensor::randn(&[h, w], &mut rng);
        let geom = ConvGeometry::new(h, w, 3, 3, 1, 0).unwrap();
        let patches = conv::extract_patches(&channel, &geom).unwrap();
        for oy in 0..geom.out_h() {
            for ox in 0..geom.out_w() {
                let row = oy * geom.out_w() + ox;
                for ky in 0..3 {
                    for kx in 0..3 {
                        prop_assert_eq!(
                            patches.at(&[row, ky * 3 + kx]),
                            channel.at(&[oy + ky, ox + kx])
                        );
                    }
                }
            }
        }
    }

    /// Pooling backward must conserve gradient mass.
    #[test]
    fn pool_backward_conserves_gradient(seed in 0u64..500, h in 2usize..9, w in 2usize..9) {
        let mut rng = Rng::new(seed);
        let input = Tensor::randn(&[1, h, w], &mut rng);
        let (out, argmax) = conv::max_pool2(&input).unwrap();
        let dout = Tensor::full(out.shape(), 1.0);
        let dx = conv::max_pool2_backward(&dout, &argmax, &[1, h, w]);
        prop_assert!((dx.sum() - dout.sum()).abs() < 1e-4);
    }
}
