//! Real-environment resolution of `MERCURY_TUNE_PROFILE`.
//!
//! The unit tests in `tune.rs` pin the *pure* precedence chain
//! ([`DispatchTuning::resolve`]); this binary owns the actual process
//! environment and pins that [`DispatchTuning::resolved`] honours it:
//! profile file → committed per-core defaults → constants, per knob, and
//! a bad profile fails loudly instead of silently falling back.
//!
//! Everything lives in ONE `#[test]` because the environment variable is
//! process-global and the test harness runs functions concurrently.

use mercury_tensor::tune::{DispatchTuning, TuneProfile};
use std::collections::BTreeMap;

#[test]
fn env_profile_resolution_precedence_and_failure_modes() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("mercury_tune_{}.json", std::process::id()));
    let path = path.to_str().expect("temp path is UTF-8").to_string();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let unset_baseline = DispatchTuning::resolve(None, cores);

    // A partial profile: only the dispatch floor is calibrated. The
    // other knobs must fall through to the committed/default base — per
    // knob, not per layer.
    let profile = TuneProfile {
        cores: Some(cores),
        dispatch_min_work: Some(777),
        probe_work_units: None,
        parallel_probe_min: None,
        max_pool_width: Some(3),
        curves: BTreeMap::new(),
    };
    profile.save(&path).expect("temp profile writes");

    std::env::set_var("MERCURY_TUNE_PROFILE", &path);
    let resolved = DispatchTuning::resolved();
    assert_eq!(resolved.dispatch_min_work, 777, "profile knob wins");
    assert_eq!(resolved.max_pool_width, 3, "profile knob wins");
    assert_eq!(
        resolved.probe_work_units, unset_baseline.probe_work_units,
        "unset knob falls through to the no-profile base"
    );
    assert_eq!(
        resolved.parallel_probe_min, unset_baseline.parallel_probe_min,
        "unset knob falls through to the no-profile base"
    );

    // A corrupt profile must panic loudly (naming the path), never
    // silently taint a calibrated run with fallback guesses.
    std::fs::write(&path, "{\"version\": 1, \"dispatch_min_work\": 0}").unwrap();
    let failure = std::panic::catch_unwind(DispatchTuning::resolved);
    assert!(
        failure.is_err(),
        "zero knob in the profile must refuse to load"
    );

    std::fs::remove_file(&path).unwrap();
    let missing = std::panic::catch_unwind(DispatchTuning::resolved);
    assert!(
        missing.is_err(),
        "pointing at a missing file must fail loudly"
    );

    // With the variable cleared, resolution is the pure no-profile chain.
    std::env::remove_var("MERCURY_TUNE_PROFILE");
    assert_eq!(DispatchTuning::resolved(), unset_baseline);
}
