//! Synthetic 80-class image dataset (the ImageNet-80 substitute).
//!
//! Each class owns a smooth prototype image built from a few Gaussian
//! blobs; samples are the prototype plus pixel noise and a small
//! translation. Smooth blobs give feature maps large near-constant regions
//! — the spatial redundancy that makes real images reusable (Figure 1).

use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// Generator for the synthetic classification dataset.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Number of classes (the paper uses 80 ImageNet classes).
    pub num_classes: usize,
    /// Image side length (square, single channel).
    pub side: usize,
    /// Per-pixel noise standard deviation applied to samples.
    pub noise: f32,
    prototypes: Vec<Tensor>,
}

impl ImageDataset {
    /// Creates a dataset generator with one random prototype per class.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `side < 4`.
    pub fn new(num_classes: usize, side: usize, noise: f32, rng: &mut Rng) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(side >= 4, "images must be at least 4x4");
        let prototypes = (0..num_classes)
            .map(|_| Self::prototype(side, rng))
            .collect();
        ImageDataset {
            num_classes,
            side,
            noise,
            prototypes,
        }
    }

    /// Builds one smooth prototype: 2–4 Gaussian blobs on a dark field.
    fn prototype(side: usize, rng: &mut Rng) -> Tensor {
        let mut img = Tensor::zeros(&[1, side, side]);
        let blobs = 2 + rng.next_below(3);
        for _ in 0..blobs {
            let cy = rng.next_range(0.2, 0.8) * side as f32;
            let cx = rng.next_range(0.2, 0.8) * side as f32;
            let sigma = rng.next_range(0.12, 0.3) * side as f32;
            let amp = rng.next_range(0.5, 1.0);
            for y in 0..side {
                for x in 0..side {
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    let v = amp * (-(dy * dy + dx * dx) / (2.0 * sigma * sigma)).exp();
                    let cur = img.at(&[0, y, x]);
                    img.set(&[0, y, x], cur + v);
                }
            }
        }
        img
    }

    /// Draws one sample of class `class`: shifted prototype plus noise.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn sample(&self, class: usize, rng: &mut Rng) -> Tensor {
        assert!(class < self.num_classes, "class out of range");
        let proto = &self.prototypes[class];
        let side = self.side;
        // Random shift of up to ±1 pixel.
        let dy = rng.next_below(3) as isize - 1;
        let dx = rng.next_below(3) as isize - 1;
        let mut img = Tensor::zeros(&[1, side, side]);
        for y in 0..side {
            for x in 0..side {
                let sy = y as isize + dy;
                let sx = x as isize + dx;
                let v = if sy >= 0 && sx >= 0 && (sy as usize) < side && (sx as usize) < side {
                    proto.at(&[0, sy as usize, sx as usize])
                } else {
                    0.0
                };
                img.set(&[0, y, x], v + self.noise * rng.next_normal());
            }
        }
        img
    }

    /// Generates a labelled dataset with `per_class` samples per class.
    pub fn generate(&self, per_class: usize, rng: &mut Rng) -> Vec<(Tensor, usize)> {
        let mut data = Vec::with_capacity(per_class * self.num_classes);
        for class in 0..self.num_classes {
            for _ in 0..per_class {
                data.push((self.sample(class, rng), class));
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes_and_labels() {
        let mut rng = Rng::new(1);
        let ds = ImageDataset::new(5, 16, 0.05, &mut rng);
        let data = ds.generate(3, &mut rng);
        assert_eq!(data.len(), 15);
        for (img, label) in &data {
            assert_eq!(img.shape(), &[1, 16, 16]);
            assert!(*label < 5);
        }
    }

    #[test]
    fn same_class_samples_are_similar() {
        let mut rng = Rng::new(2);
        let ds = ImageDataset::new(3, 16, 0.02, &mut rng);
        let a = ds.sample(0, &mut rng);
        let b = ds.sample(0, &mut rng);
        let c = ds.sample(1, &mut rng);
        let d_same = a.distance(&b).unwrap();
        let d_diff = a.distance(&c).unwrap();
        assert!(
            d_same < d_diff,
            "same-class distance {d_same} should undercut cross-class {d_diff}"
        );
    }

    #[test]
    fn images_have_smooth_regions() {
        // Adjacent-pixel difference should be small relative to the
        // dynamic range — the property that drives patch similarity.
        let mut rng = Rng::new(3);
        let ds = ImageDataset::new(1, 32, 0.0, &mut rng);
        let img = ds.sample(0, &mut rng);
        let mut total_grad = 0.0f32;
        let mut count = 0;
        for y in 0..31 {
            for x in 0..31 {
                total_grad += (img.at(&[0, y, x]) - img.at(&[0, y, x + 1])).abs();
                total_grad += (img.at(&[0, y, x]) - img.at(&[0, y + 1, x])).abs();
                count += 2;
            }
        }
        let mean_grad = total_grad / count as f32;
        let range = img.max();
        assert!(
            mean_grad < 0.1 * range,
            "mean gradient {mean_grad} vs range {range}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut rng = Rng::new(9);
            let ds = ImageDataset::new(2, 8, 0.1, &mut rng);
            ds.generate(2, &mut rng)
        };
        let a = mk();
        let b = mk();
        for ((ia, la), (ib, lb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ia, ib);
        }
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn sample_rejects_bad_class() {
        let mut rng = Rng::new(4);
        let ds = ImageDataset::new(2, 8, 0.1, &mut rng);
        ds.sample(2, &mut rng);
    }
}
