//! Synthetic workloads for the MERCURY reproduction.
//!
//! The paper evaluates on ImageNet (80 classes) and Multi30k; neither is
//! available to a self-contained reproduction, so this crate provides
//! generators that preserve the property MERCURY exploits — *input
//! similarity* — while remaining fully deterministic:
//!
//! * [`stream`] — cluster-structured signature streams for the
//!   simulator-scale experiments: vectors are drawn from a Zipf-like
//!   popularity distribution over clusters, every cluster maps to one
//!   signature, and outcomes (HIT/MAU/MNU) emerge from probing a *real*
//!   MCACHE, so set conflicts and the no-replacement policy shape the
//!   results just as in hardware.
//! * [`images`] — an 80-class synthetic image dataset with smooth class
//!   prototypes plus noise; smooth regions give early conv layers the high
//!   patch similarity Figure 1 documents for real images.
//! * [`sequences`] — token-sequence classification data for the
//!   transformer experiments, with repeated prototype tokens providing
//!   attention-level similarity.
//! * [`tenants`] — per-tenant request streams for the `mercury-serve`
//!   load generator: every tenant owns private prototype clusters under
//!   a Zipf-like popularity skew, and streams are deterministic per
//!   `(seed, tenant)` pair.

#![warn(missing_docs)]

pub mod images;
pub mod sequences;
pub mod stream;
pub mod tenants;
