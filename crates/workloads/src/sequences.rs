//! Synthetic token-sequence dataset (the Multi30k substitute).
//!
//! Classification task: each class owns a small vocabulary of prototype
//! token vectors; a sample sequence draws tokens from its class vocabulary
//! with repetition plus noise. Repeated prototype tokens give the
//! attention layer the cross-position similarity MERCURY exploits
//! (§III-C4).

use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// Generator for the synthetic sequence-classification dataset.
#[derive(Debug, Clone)]
pub struct SeqDataset {
    /// Number of classes.
    pub num_classes: usize,
    /// Sequence length `t`.
    pub seq_len: usize,
    /// Token representation size `k`.
    pub dim: usize,
    /// Per-element token noise.
    pub noise: f32,
    /// Prototype tokens per class.
    vocab: Vec<Vec<Tensor>>,
}

impl SeqDataset {
    /// Creates a generator with `tokens_per_class` prototype tokens per
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        num_classes: usize,
        seq_len: usize,
        dim: usize,
        tokens_per_class: usize,
        noise: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            num_classes > 0 && seq_len > 0 && dim > 0 && tokens_per_class > 0,
            "sizes must be positive"
        );
        let vocab = (0..num_classes)
            .map(|_| {
                (0..tokens_per_class)
                    .map(|_| Tensor::randn(&[dim], rng))
                    .collect()
            })
            .collect();
        SeqDataset {
            num_classes,
            seq_len,
            dim,
            noise,
            vocab,
        }
    }

    /// Draws one `[seq_len, dim]` sample of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn sample(&self, class: usize, rng: &mut Rng) -> Tensor {
        assert!(class < self.num_classes, "class out of range");
        let vocab = &self.vocab[class];
        let mut data = Vec::with_capacity(self.seq_len * self.dim);
        for _ in 0..self.seq_len {
            let token = &vocab[rng.next_below(vocab.len())];
            for &v in token.data() {
                data.push(v + self.noise * rng.next_normal());
            }
        }
        Tensor::from_vec(data, &[self.seq_len, self.dim]).expect("sizes validated at construction")
    }

    /// Generates a labelled dataset with `per_class` samples per class.
    pub fn generate(&self, per_class: usize, rng: &mut Rng) -> Vec<(Tensor, usize)> {
        let mut data = Vec::with_capacity(per_class * self.num_classes);
        for class in 0..self.num_classes {
            for _ in 0..per_class {
                data.push((self.sample(class, rng), class));
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let mut rng = Rng::new(1);
        let ds = SeqDataset::new(4, 8, 16, 3, 0.05, &mut rng);
        let data = ds.generate(2, &mut rng);
        assert_eq!(data.len(), 8);
        for (seq, label) in &data {
            assert_eq!(seq.shape(), &[8, 16]);
            assert!(*label < 4);
        }
    }

    #[test]
    fn sequences_repeat_tokens() {
        // With 2 prototype tokens and 8 positions, repeats are guaranteed;
        // with tiny noise, repeated tokens stay nearly identical.
        let mut rng = Rng::new(2);
        let ds = SeqDataset::new(1, 8, 8, 2, 1e-4, &mut rng);
        let seq = ds.sample(0, &mut rng);
        let mut min_pair_dist = f32::INFINITY;
        for i in 0..8 {
            for j in (i + 1)..8 {
                let a = Tensor::from_vec(seq.data()[i * 8..(i + 1) * 8].to_vec(), &[8]).unwrap();
                let b = Tensor::from_vec(seq.data()[j * 8..(j + 1) * 8].to_vec(), &[8]).unwrap();
                min_pair_dist = min_pair_dist.min(a.distance(&b).unwrap());
            }
        }
        assert!(
            min_pair_dist < 0.01,
            "expected near-duplicate tokens, min distance {min_pair_dist}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut rng = Rng::new(7);
            let ds = SeqDataset::new(2, 4, 6, 2, 0.1, &mut rng);
            ds.generate(2, &mut rng)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn rejects_zero_sizes() {
        SeqDataset::new(0, 4, 4, 2, 0.1, &mut Rng::new(1));
    }
}
