//! Cluster-structured signature streams for simulator-scale experiments.
//!
//! A feature map's patches cluster around distinct values with a heavily
//! skewed popularity: a few hundred *popular* patches (flat regions,
//! repeated textures) cover most repeats — Figure 15c of the paper counts
//! only hundreds-to-a-thousand unique vectors per VGG-13 layer against
//! tens of thousands of patches — plus a long tail of rare patches.
//!
//! [`VectorStream`] models this with a two-tier process: each position is
//! a *repeat* with probability `similarity` (drawn from the popular tier
//! with probability `popular_fraction`, else uniformly from everything
//! seen) or a fresh cluster otherwise. Probing a real [`MCache`] with the
//! stream then yields HIT/MAU/MNU outcomes shaped by actual set conflicts
//! and the no-replacement policy: popular-tier repeats mostly hit, tail
//! repeats and overflow uniques become MNUs.

use mercury_mcache::{HitKind, MCache};
use mercury_rpq::Signature;
use mercury_tensor::rng::{Rng, RngState};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Memo key for one cluster-id synthesis: the stream's distribution
/// parameters (floats as raw bits so the key is `Eq`/`Hash`) plus the
/// generator state at call time — together they determine the id sequence
/// completely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ClusterKey {
    num_vectors: usize,
    similarity_bits: u64,
    popular_tier: usize,
    popular_fraction_bits: u64,
    rng: RngState,
}

/// Global memo of synthesized cluster-id sequences: key → (ids, generator
/// state after synthesis). Benchmarks and the model simulator replay the
/// same `(stream, seed)` pairs run after run — and across simulator worker
/// threads — so a process-wide map (not a thread-local) is what makes the
/// hits land. Bounded by wholesale clearing: the workspace's working set
/// is a few dozen keys, so eviction sophistication would buy nothing.
type ClusterMemo = Mutex<HashMap<ClusterKey, (Arc<Vec<usize>>, RngState)>>;

static CLUSTER_MEMO: OnceLock<ClusterMemo> = OnceLock::new();

/// Entries kept before the memo is cleared wholesale.
const CLUSTER_MEMO_CAPACITY: usize = 256;

/// Configuration of a synthetic input-vector stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorStream {
    /// Number of vectors in the stream (patches in the channel).
    pub num_vectors: usize,
    /// Probability that a vector repeats an earlier cluster.
    pub similarity: f64,
    /// Size of the popular tier: repeats concentrate on the first
    /// `popular_tier` distinct clusters (the Figure 15c scale).
    pub popular_tier: usize,
    /// Fraction of repeats drawn from the popular tier.
    pub popular_fraction: f64,
    /// Signature length in bits.
    pub signature_bits: usize,
}

impl VectorStream {
    /// Creates a stream with the default popularity structure (tier of
    /// 1024 clusters receiving 90% of repeats).
    ///
    /// # Panics
    ///
    /// Panics if `num_vectors == 0` or `similarity` is outside `[0, 1)`.
    pub fn with_similarity(num_vectors: usize, similarity: f64, signature_bits: usize) -> Self {
        assert!(num_vectors > 0, "stream must contain vectors");
        assert!(
            (0.0..1.0).contains(&similarity),
            "similarity must be in [0, 1)"
        );
        VectorStream {
            num_vectors,
            similarity,
            popular_tier: 1024,
            popular_fraction: 0.9,
            signature_bits,
        }
    }

    /// Expected number of distinct clusters in the stream.
    pub fn expected_unique(&self) -> usize {
        ((self.num_vectors as f64) * (1.0 - self.similarity))
            .ceil()
            .max(1.0) as usize
    }

    /// Draws the cluster id sequence. Ids are dense: cluster `k` is the
    /// `k`-th distinct cluster to appear.
    ///
    /// The sequence is a pure function of the stream parameters and the
    /// generator state, so results are memoized process-wide: replaying
    /// the same `(stream, seed)` — as every bench iteration and repeated
    /// simulation run does — returns the cached ids and fast-forwards
    /// `rng` to the state synthesis would have left it in, bit-identical
    /// to a fresh draw.
    pub fn cluster_ids(&self, rng: &mut Rng) -> Vec<usize> {
        self.cluster_ids_shared(rng).as_ref().clone()
    }

    /// [`cluster_ids`](Self::cluster_ids) without the final copy; `probe`
    /// iterates the shared sequence in place.
    fn cluster_ids_shared(&self, rng: &mut Rng) -> Arc<Vec<usize>> {
        let key = ClusterKey {
            num_vectors: self.num_vectors,
            similarity_bits: self.similarity.to_bits(),
            popular_tier: self.popular_tier,
            popular_fraction_bits: self.popular_fraction.to_bits(),
            rng: rng.checkpoint(),
        };
        let memo = CLUSTER_MEMO.get_or_init(Default::default);
        if let Some((ids, post)) = memo.lock().unwrap().get(&key).cloned() {
            rng.restore(post);
            return ids;
        }
        let ids = Arc::new(self.synthesize_cluster_ids(rng));
        let mut guard = memo.lock().unwrap();
        if guard.len() >= CLUSTER_MEMO_CAPACITY {
            guard.clear();
        }
        guard.insert(key, (Arc::clone(&ids), rng.checkpoint()));
        ids
    }

    /// The actual two-tier synthesis backing [`cluster_ids`]
    /// (`Self::cluster_ids`); memo misses land here.
    fn synthesize_cluster_ids(&self, rng: &mut Rng) -> Vec<usize> {
        let mut ids = Vec::with_capacity(self.num_vectors);
        let mut next_id = 0usize;
        for _ in 0..self.num_vectors {
            let repeat = next_id > 0 && rng.next_f64() < self.similarity;
            if !repeat {
                ids.push(next_id);
                next_id += 1;
                continue;
            }
            let tier = self.popular_tier.min(next_id).max(1);
            let id = if rng.next_f64() < self.popular_fraction {
                rng.next_below(tier)
            } else {
                rng.next_below(next_id)
            };
            ids.push(id);
        }
        ids
    }

    /// Maps cluster ids to synthetic signatures (one random signature per
    /// cluster) and probes the cache, returning the per-vector outcomes
    /// and the number of same-window insertion conflicts.
    ///
    /// The cache is cleared first — each stream models one channel, and
    /// channels restart MCACHE (§III-B3).
    ///
    /// Only a cluster's *first* occurrence physically probes the cache;
    /// repeats replay its steady outcome, which is invariant within a
    /// channel: an inserted tag (MAU, or a HIT on a colliding signature)
    /// stays resident — no replacement, no tag invalidation short of
    /// `clear` — so every later probe of that cluster is a HIT on the same
    /// entry, and a full set (MNU) only ever fills further, so every later
    /// probe stays an MNU. Outcome vectors are bit-identical to probing
    /// each vector; the cache's aggregate hit/miss counters tally distinct
    /// clusters rather than raw probes (`insert_conflicts`, which only
    /// first occurrences can raise, is unaffected).
    pub fn probe(&self, cache: &mut MCache, rng: &mut Rng) -> (Vec<HitKind>, u64) {
        let ids = self.cluster_ids_shared(rng);
        let max_id = ids.iter().copied().max().unwrap_or(0);
        let sigs: Vec<Signature> = (0..=max_id)
            .map(|_| {
                let hi = (rng.next_u64() as u128) << 64;
                let lo = rng.next_u64() as u128;
                Signature::from_bits(hi | lo, self.signature_bits.clamp(1, 128))
            })
            .collect();
        cache.clear();
        cache.begin_insert_batch();
        let before = cache.stats().insert_conflicts;
        let mut first_outcome: Vec<Option<HitKind>> = vec![None; sigs.len()];
        let outcomes: Vec<HitKind> = ids
            .iter()
            .map(|&id| match first_outcome[id] {
                Some(HitKind::Mnu) => HitKind::Mnu,
                Some(_) => HitKind::Hit,
                None => {
                    let kind = cache.probe_insert(sigs[id]).kind;
                    first_outcome[id] = Some(kind);
                    kind
                }
            })
            .collect();
        let conflicts = cache.stats().insert_conflicts - before;
        (outcomes, conflicts)
    }
}

/// Measured mix of outcomes from a probe run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeMix {
    /// HIT count.
    pub hits: usize,
    /// MAU count.
    pub maus: usize,
    /// MNU count.
    pub mnus: usize,
}

impl OutcomeMix {
    /// Tallies a slice of outcomes.
    pub fn from_outcomes(outcomes: &[HitKind]) -> Self {
        let mut mix = OutcomeMix::default();
        for &o in outcomes {
            match o {
                HitKind::Hit => mix.hits += 1,
                HitKind::Mau => mix.maus += 1,
                HitKind::Mnu => mix.mnus += 1,
            }
        }
        mix
    }

    /// Fraction of probes that hit.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.maus + self.mnus;
        if n == 0 {
            return 0.0;
        }
        self.hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury_mcache::MCacheConfig;

    fn cache() -> MCache {
        MCache::new(MCacheConfig::paper_default())
    }

    #[test]
    fn with_similarity_sets_expected_unique() {
        let s = VectorStream::with_similarity(1000, 0.75, 20);
        assert_eq!(s.expected_unique(), 250);
        assert_eq!(s.num_vectors, 1000);
    }

    #[test]
    fn unique_count_tracks_similarity() {
        let s = VectorStream::with_similarity(4000, 0.6, 20);
        let ids = s.cluster_ids(&mut Rng::new(1));
        let distinct: std::collections::HashSet<usize> = ids.iter().copied().collect();
        let expected = s.expected_unique();
        assert!(
            (distinct.len() as f64 - expected as f64).abs() < expected as f64 * 0.15,
            "distinct {} vs expected {expected}",
            distinct.len()
        );
        assert_eq!(ids.len(), 4000);
    }

    #[test]
    fn probe_hit_rate_tracks_similarity_when_cache_fits() {
        // With few uniques (small stream), nearly every repeat hits.
        for &target in &[0.3, 0.5, 0.8] {
            let s = VectorStream::with_similarity(2000, target, 20);
            let (outcomes, _) = s.probe(&mut cache(), &mut Rng::new(7));
            let mix = OutcomeMix::from_outcomes(&outcomes);
            assert!(
                mix.hit_rate() <= target + 0.05,
                "target {target}: hit rate {} too high",
                mix.hit_rate()
            );
            assert!(
                mix.hit_rate() >= target * 0.6,
                "target {target}: hit rate {} too low",
                mix.hit_rate()
            );
        }
    }

    #[test]
    fn big_streams_produce_mnus_but_keep_hitting() {
        // 50k vectors at 70% similarity: ~15k uniques overflow the
        // 1024-entry cache (MNUs), but the popular tier keeps hitting —
        // the structure Figure 15a shows.
        let s = VectorStream::with_similarity(50_000, 0.7, 20);
        let (outcomes, _) = s.probe(&mut cache(), &mut Rng::new(3));
        let mix = OutcomeMix::from_outcomes(&outcomes);
        assert!(mix.mnus > 5_000, "expected MNU overflow, got {}", mix.mnus);
        assert!(
            mix.hit_rate() > 0.45,
            "popular tier should keep hit rate healthy, got {}",
            mix.hit_rate()
        );
        assert!(mix.maus <= 1024, "MAUs bounded by cache capacity");
    }

    #[test]
    fn memoized_cluster_ids_match_direct_synthesis() {
        let s = VectorStream::with_similarity(3000, 0.7, 20);
        // Reference: synthesis without the memo.
        let mut reference_rng = Rng::new(21);
        let want = s.synthesize_cluster_ids(&mut reference_rng);

        // First call may or may not hit the memo (other tests share the
        // process-wide map); either way ids and the post-call rng state
        // must be bit-identical to direct synthesis.
        for _ in 0..2 {
            let mut rng = Rng::new(21);
            let got = s.cluster_ids(&mut rng);
            assert_eq!(got, want);
            assert_eq!(rng.checkpoint(), reference_rng.checkpoint());
            // And the generator keeps producing the same continuation.
            assert_eq!(rng.next_u64(), reference_rng.clone().next_u64());
        }
    }

    #[test]
    fn memo_distinguishes_stream_parameters_and_seeds() {
        let a = VectorStream::with_similarity(500, 0.6, 20);
        let b = VectorStream::with_similarity(500, 0.61, 20);
        let ids_a = a.cluster_ids(&mut Rng::new(5));
        let ids_b = b.cluster_ids(&mut Rng::new(5));
        let ids_a2 = a.cluster_ids(&mut Rng::new(6));
        assert_ne!(ids_a, ids_b, "similarity must be part of the memo key");
        assert_ne!(ids_a, ids_a2, "seed must be part of the memo key");
    }

    #[test]
    fn probe_is_deterministic_per_seed() {
        let s = VectorStream::with_similarity(400, 0.6, 20);
        let (a, ca) = s.probe(&mut cache(), &mut Rng::new(11));
        let (b, cb) = s.probe(&mut cache(), &mut Rng::new(11));
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn popular_tier_concentrates_repeats() {
        let s = VectorStream::with_similarity(20_000, 0.7, 20);
        let ids = s.cluster_ids(&mut Rng::new(5));
        let mut counts = std::collections::HashMap::new();
        for id in &ids {
            *counts.entry(*id).or_insert(0usize) += 1;
        }
        let popular_mass: usize = counts
            .iter()
            .filter(|(&id, _)| id < s.popular_tier)
            .map(|(_, &c)| c)
            .sum();
        // Popular tier holds its own appearances plus ~90% of repeats.
        assert!(
            popular_mass as f64 > 0.6 * ids.len() as f64,
            "popular mass {popular_mass} of {}",
            ids.len()
        );
    }

    #[test]
    fn outcome_mix_arithmetic() {
        let outcomes = vec![HitKind::Hit, HitKind::Hit, HitKind::Mau, HitKind::Mnu];
        let mix = OutcomeMix::from_outcomes(&outcomes);
        assert_eq!((mix.hits, mix.maus, mix.mnus), (2, 1, 1));
        assert!((mix.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(OutcomeMix::default().hit_rate(), 0.0);
    }

    #[test]
    fn zero_similarity_streams_never_hit() {
        let s = VectorStream::with_similarity(500, 0.0, 20);
        let (outcomes, _) = s.probe(&mut cache(), &mut Rng::new(9));
        let mix = OutcomeMix::from_outcomes(&outcomes);
        assert_eq!(mix.hits, 0);
    }
}
