//! Multi-tenant serving traffic for `mercury-serve` load generation.
//!
//! A serving tier sees many tenants, each with its *own* notion of
//! "typical input": one tenant's requests cluster around its prototypes,
//! not its neighbour's. [`TenantMix`] models exactly that — every tenant
//! owns a private set of cluster prototypes, requests are a prototype
//! plus noise drawn under a Zipf-like popularity skew (a few clusters
//! dominate, as real request distributions do), and each tenant's stream
//! is generated from an RNG seeded only by the mix seed and the tenant
//! index. Streams are therefore deterministic, reproducible request by
//! request, and independent across tenants — the properties the
//! determinism tests and the `loadgen` bench both rely on.

use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// Per-tenant request-stream generator for multi-tenant serving runs.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Feature width of every request (rows are batch size 1).
    pub features: usize,
    /// Prototype clusters per tenant.
    pub clusters: usize,
    /// Per-feature noise standard deviation around the prototype.
    pub noise: f32,
    /// Base seed; tenant `t` streams from `seed ⊕ hash(t)`.
    pub seed: u64,
}

impl TenantMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `clusters` is zero.
    pub fn new(features: usize, clusters: usize, noise: f32, seed: u64) -> Self {
        assert!(features > 0, "need at least one feature");
        assert!(clusters > 0, "need at least one cluster");
        TenantMix {
            features,
            clusters,
            noise,
            seed,
        }
    }

    /// The RNG a tenant's stream is drawn from. Mixing the index through
    /// a splitmix-style constant keeps adjacent tenants' streams
    /// decorrelated even for adjacent seeds.
    fn tenant_rng(&self, tenant: usize) -> Rng {
        Rng::new(self.seed ^ (tenant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Generates one tenant's full request stream: `requests` tensors of
    /// shape `[1, features]`, deterministic in `(seed, tenant, requests)`
    /// — the first `k` requests of a longer stream equal a shorter one's.
    pub fn tenant_stream(&self, tenant: usize, requests: usize) -> Vec<Tensor> {
        let mut rng = self.tenant_rng(tenant);
        let prototypes: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| (0..self.features).map(|_| rng.next_normal()).collect())
            .collect();
        (0..requests)
            .map(|_| {
                let cluster = self.pick_cluster(&mut rng);
                let mut t = Tensor::zeros(&[1, self.features]);
                for (i, &p) in prototypes[cluster].iter().enumerate() {
                    t.set(&[0, i], p + self.noise * rng.next_normal());
                }
                t
            })
            .collect()
    }

    /// Generates every tenant's stream at once: `streams(n, r)[t]` is
    /// exactly `tenant_stream(t, r)`. The shape threaded-client load
    /// generators want — build all the streams up front, then move one
    /// `Vec<Tensor>` into each submitting thread.
    pub fn client_streams(&self, tenants: usize, requests: usize) -> Vec<Vec<Tensor>> {
        (0..tenants)
            .map(|t| self.tenant_stream(t, requests))
            .collect()
    }

    /// Zipf-like cluster choice: cluster `c` is roughly twice as popular
    /// as cluster `c + 1`, with a uniform floor so every cluster appears.
    fn pick_cluster(&self, rng: &mut Rng) -> usize {
        // Geometric skew via leading trials: walk down while a coin
        // keeps coming up heads, capped at the last cluster.
        let mut cluster = 0;
        while cluster + 1 < self.clusters && rng.next_f32() < 0.5 {
            cluster += 1;
        }
        // Small uniform floor (one request in eight) to touch the tail.
        if rng.next_below(8) == 0 {
            cluster = rng.next_below(self.clusters);
        }
        cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_prefix_stable() {
        let mix = TenantMix::new(16, 4, 0.05, 7);
        let a = mix.tenant_stream(0, 10);
        let b = mix.tenant_stream(0, 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
        }
        // A longer stream starts with the shorter one.
        let long = mix.tenant_stream(0, 20);
        for (x, y) in a.iter().zip(&long) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn client_streams_match_per_tenant_streams() {
        let mix = TenantMix::new(16, 4, 0.05, 7);
        let all = mix.client_streams(3, 6);
        assert_eq!(all.len(), 3);
        for (t, stream) in all.iter().enumerate() {
            let want = mix.tenant_stream(t, 6);
            assert_eq!(stream.len(), want.len());
            for (x, y) in stream.iter().zip(&want) {
                assert_eq!(x.data(), y.data());
            }
        }
    }

    #[test]
    fn tenants_are_decorrelated() {
        let mix = TenantMix::new(16, 4, 0.05, 7);
        let a = mix.tenant_stream(0, 5);
        let b = mix.tenant_stream(1, 5);
        assert_ne!(a[0].data(), b[0].data(), "tenants share no prototypes");
    }

    #[test]
    fn requests_cluster_for_reuse() {
        // With tiny noise, popular-cluster requests are near-identical —
        // the similarity a serving MCACHE converts into hits.
        let mix = TenantMix::new(8, 2, 0.0, 3);
        let stream = mix.tenant_stream(0, 32);
        let mut distinct: Vec<&[f32]> = Vec::new();
        for t in &stream {
            if !distinct.iter().any(|d| *d == t.data()) {
                distinct.push(t.data());
            }
        }
        assert!(
            distinct.len() <= 2,
            "zero-noise streams collapse onto the cluster prototypes"
        );
    }
}
