//! Train a small CNN with MERCURY's run-time adaptation (§III-D): watch
//! the reuse statistics and detection decisions evolve across epochs.
//!
//! ```text
//! cargo run --release --example adaptive_training
//! ```

use mercury_core::MercuryConfig;
use mercury_dnn::{ExecMode, Layer, Network, Trainer, TrainerConfig};
use mercury_tensor::rng::Rng;
use mercury_workloads::images::ImageDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(11);
    let dataset = ImageDataset::new(4, 16, 0.05, &mut rng);
    let train = dataset.generate(20, &mut rng);
    let val = dataset.generate(6, &mut rng);

    let mut net_rng = Rng::new(5);
    // Filter counts are kept at realistic widths: the signature phase
    // amortizes over the filters, so very narrow conv layers would be
    // (correctly) shut off by the stoppage controller.
    let net = Network::new(
        vec![
            Layer::conv2d(32, 1, 3, 1, &mut net_rng),
            Layer::relu(),
            Layer::max_pool(),
            Layer::conv2d(32, 32, 3, 1, &mut net_rng),
            Layer::relu(),
            Layer::max_pool(),
            Layer::flatten(),
            Layer::fc(32 * 4 * 4, 4, &mut net_rng),
        ],
        ExecMode::Mercury {
            config: MercuryConfig::default(),
            seed: 99,
        },
    );
    let mut trainer = Trainer::new(
        net,
        TrainerConfig {
            learning_rate: 0.03,
            batch_size: 8,
            adaptive: true,
        },
    );

    println!("epoch  loss    train_acc  reuse%  detection_on");
    for epoch in 0..10 {
        let stats = trainer.train_epoch(&train, &mut rng)?;
        println!(
            "{epoch:>5}  {:.4}  {:>8.1}%  {:>5.1}%  {:>12}",
            stats.mean_loss,
            100.0 * stats.accuracy,
            100.0 * stats.mercury.similarity(),
            stats.detection_on,
        );
    }
    let acc = trainer.evaluate(&val)?;
    println!(
        "\nvalidation accuracy with MERCURY reuse: {:.1}%",
        100.0 * acc
    );
    Ok(())
}
