//! Compare MERCURY across the three supported dataflows (§IV) on one
//! model — the experiment behind Figure 18, interactive-sized.
//!
//! ```text
//! cargo run --release --example dataflow_comparison [model-name]
//! ```
//!
//! Model names follow the paper's figures: `AlexNet`, `VGG-13`,
//! `ResNet50`, `Transformer`, ... (default `VGG-13`).

use mercury_accel::config::{AcceleratorConfig, Dataflow};
use mercury_bench::{simulate_model, ModelSimConfig};
use mercury_models::all_models;

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "VGG-13".to_string());
    let Some(spec) = all_models().into_iter().find(|m| m.name == wanted) else {
        eprintln!("unknown model {wanted}; available:");
        for m in all_models() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(1);
    };

    println!("model: {}", spec.name);
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "dataflow", "mercury_cyc", "baseline_cyc", "speedup"
    );
    for flow in [
        Dataflow::RowStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ] {
        let cfg = ModelSimConfig {
            accelerator: AcceleratorConfig {
                dataflow: flow,
                ..AcceleratorConfig::paper_default()
            },
            ..ModelSimConfig::default()
        };
        let report = simulate_model(&spec, &cfg);
        let total = report.total_cycles();
        println!(
            "{:<18} {:>14} {:>14} {:>7.2}x",
            flow.to_string(),
            total.total(),
            total.baseline,
            report.speedup()
        );
    }
}
