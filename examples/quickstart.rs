//! Quickstart: run one MERCURY convolution and inspect the reuse.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a smooth input (high patch similarity), convolves it through the
//! MERCURY engine, and prints the MCACHE access mix, the cycle accounting
//! from the simulated accelerator, and the numerical error against an
//! exact convolution.

use mercury_core::{ConvEngine, MercuryConfig};
use mercury_tensor::conv::conv2d_multi;
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(42);

    // A 32x32 image tiled from a handful of distinct textures (stripes,
    // checkers, gradient): the repeated-patch structure of natural images
    // that MERCURY exploits. Repeated tiles produce *exactly* repeated
    // patches, so the reused results are exact.
    let mut image = Tensor::zeros(&[1, 32, 32]);
    for y in 0..32 {
        for x in 0..32 {
            let v = match (y / 8 + x / 8) % 3 {
                0 => {
                    if y % 2 == 0 {
                        0.8
                    } else {
                        -0.4
                    }
                } // stripes
                1 => {
                    if (y + x) % 2 == 0 {
                        0.6
                    } else {
                        -0.6
                    }
                } // checkers
                _ => (y % 8) as f32 * 0.1 - 0.35, // ramp
            };
            image.set(&[0, y, x], v);
        }
    }
    let kernels = Tensor::randn(&[64, 1, 3, 3], &mut rng);

    // MERCURY convolution: signatures -> MCACHE -> reuse.
    let mut engine = ConvEngine::new(MercuryConfig::default(), 7);
    let result = engine.forward(&image, &kernels, 1, 1)?;

    let stats = result.stats;
    println!("input vectors     : {}", stats.total_vectors());
    println!("  HIT  (reused)   : {}", stats.hits);
    println!("  MAU  (cached)   : {}", stats.maus);
    println!("  MNU  (computed) : {}", stats.mnus);
    println!("unique vectors    : {}", stats.unique_vectors);
    println!("similarity        : {:.1}%", 100.0 * stats.similarity());
    println!();
    println!("baseline cycles   : {}", stats.cycles.baseline);
    println!("mercury cycles    : {}", stats.cycles.total());
    println!("  signature phase : {}", stats.cycles.signature);
    println!("  compute phase   : {}", stats.cycles.compute);
    println!("speedup           : {:.2}x", stats.cycles.speedup());

    // Reuse substitutes producer results for similar patches; measure the
    // numerical deviation versus the exact convolution.
    let exact = conv2d_multi(&image, &kernels, 1, 1)?;
    let err = result.output.sub(&exact)?.norm_sq().sqrt() / exact.norm_sq().sqrt();
    println!();
    println!("relative L2 error vs exact conv: {err:.2e}");
    Ok(())
}
