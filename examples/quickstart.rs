//! Quickstart: open a long-lived MERCURY session, stream convolution
//! requests through it, and watch reuse compound across requests.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a smooth input (high patch similarity), registers one conv layer
//! with a [`MercurySession`], and submits it twice: the first request pays
//! the cold-start MAUs, the second hits on the MCACHE state that persisted
//! across submits. An epoch boundary then evicts everything. Also prints
//! the cycle accounting from the simulated accelerator and the numerical
//! error against an exact convolution.

use mercury_core::{ExecutorKind, MercuryConfig, MercurySession};
use mercury_tensor::conv::conv2d_multi;
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(42);

    // A 32x32 image tiled from a handful of distinct textures (stripes,
    // checkers, gradient): the repeated-patch structure of natural images
    // that MERCURY exploits. Repeated tiles produce *exactly* repeated
    // patches, so the reused results are exact.
    let mut image = Tensor::zeros(&[1, 32, 32]);
    for y in 0..32 {
        for x in 0..32 {
            let v = match (y / 8 + x / 8) % 3 {
                0 => {
                    if y % 2 == 0 {
                        0.8
                    } else {
                        -0.4
                    }
                } // stripes
                1 => {
                    if (y + x) % 2 == 0 {
                        0.6
                    } else {
                        -0.6
                    }
                } // checkers
                _ => (y % 8) as f32 * 0.1 - 0.35, // ramp
            };
            image.set(&[0, y, x], v);
        }
    }
    let kernels = Tensor::randn(&[64, 1, 3, 3], &mut rng);

    // One session, one registered conv layer, a stream of submits. The
    // typed config builder rejects bad configurations with a ConfigError.
    // The executor picks the scheduling backend — serial is the reference,
    // `ExecutorKind::threaded_auto()` sizes a pool to the machine, and
    // both produce bit-identical results — so choose threaded on multi-
    // core hosts for wall-clock, serial for minimal overhead elsewhere
    // (MERCURY_EXECUTOR=serial|threaded overrides at run time).
    let executor = ExecutorKind::from_env_or(ExecutorKind::Serial);
    let config = MercuryConfig::builder().executor(executor).build()?;
    let mut session = MercurySession::new(config, 7)?;
    let conv = session.register_conv(kernels.clone(), 1, 1)?;

    let first = session.submit(conv, &image)?;
    let second = session.submit(conv, &image)?;

    for (label, result) in [("request 1 (cold)", &first), ("request 2 (warm)", &second)] {
        let stats = &result.report.stats;
        println!("--- {label} ---");
        println!("input vectors     : {}", stats.total_vectors());
        println!("  HIT  (reused)   : {}", stats.hits);
        println!("  MAU  (cached)   : {}", stats.maus);
        println!("  MNU  (computed) : {}", stats.mnus);
        println!("similarity        : {:.1}%", 100.0 * stats.similarity());
        println!("baseline cycles   : {}", stats.cycles.baseline);
        println!("mercury cycles    : {}", stats.cycles.total());
        println!("  signature phase : {}", stats.cycles.signature);
        println!("  compute phase   : {}", stats.cycles.compute);
        println!("speedup           : {:.2}x", stats.cycles.speedup());
        println!();
    }
    println!(
        "cross-request reuse: {} extra hits on request 2 (persistent MCACHE)",
        second.stats().hits - first.stats().hits
    );

    // Epoch boundary: flash-clear every engine's cache (O(sets) occupancy
    // reset + O(1) data-version epoch bump, no per-entry walk); the
    // next request starts cold again.
    session.advance_epoch();
    let evicted = session.submit(conv, &image)?;
    println!(
        "after advance_epoch(): request sees {} MAUs again (cache evicted)",
        evicted.stats().maus
    );

    // Reuse substitutes producer results for similar patches; measure the
    // numerical deviation versus the exact convolution.
    let exact = conv2d_multi(&image, &kernels, 1, 1)?;
    let err = second.output.sub(&exact)?.norm_sq().sqrt() / exact.norm_sq().sqrt();
    println!();
    println!("relative L2 error vs exact conv: {err:.2e}");
    Ok(())
}
