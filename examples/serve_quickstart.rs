//! Stand up a multi-tenant MERCURY serving endpoint: the server runs on
//! its own service thread, two tenant threads stream cluster-structured
//! requests through cloned `ServeClient` handles into one shared worker
//! pool under a global memory budget, then shutdown hands the warm
//! server back and the per-tenant reuse hit rates and the budget's
//! eviction log are printed.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use mercury_core::MercuryConfig;
use mercury_serve::{EpochPolicy, PacingPolicy, ServeConfig, Server};
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;
use mercury_workloads::tenants::TenantMix;

const FEATURES: usize = 32;
const REQUESTS: usize = 96;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One pool, bounded queues, a batching window, saturation pacing
    // (tick as soon as a window fills), and a memory budget small
    // enough to show the eviction machinery working.
    let config = ServeConfig::builder()
        .queue_capacity(32)
        .batch_window(8)
        .memory_budget(Some(256))
        .pacing(PacingPolicy::Saturation)
        .build()?;
    let mut server = Server::new(config)?;

    // Two tenants, two epoch policies: "search" refreshes its banked
    // caches every 32 requests, "embed" lets them persist until the
    // budget reclaims them.
    let search = server.register_tenant(
        "search",
        MercuryConfig::default(),
        7,
        EpochPolicy::EveryRequests(32),
    )?;
    let embed = server.register_tenant("embed", MercuryConfig::default(), 8, EpochPolicy::Never)?;
    let search_fc = server.register_fc(search, Tensor::randn(&[FEATURES, 16], &mut Rng::new(7)))?;
    let embed_fc = server.register_fc(embed, Tensor::randn(&[FEATURES, 16], &mut Rng::new(8)))?;

    // Cluster-structured traffic: each tenant's requests orbit its own
    // prototypes, which is exactly the similarity MERCURY banks on.
    let mix = TenantMix::new(FEATURES, 4, 0.03, 42);

    // Move the server onto its service thread; from here on this
    // process only talks to it through client handles.
    let handle = server.serve();
    let client = handle.client();

    // One submitting thread per tenant, each owning a clone of the
    // client (clones are cheap and get their own completion mailbox).
    std::thread::scope(|scope| {
        for (stream_index, (tenant, layer)) in [(search, search_fc), (embed, embed_fc)]
            .into_iter()
            .enumerate()
        {
            let client = client.clone();
            let inputs = mix.tenant_stream(stream_index, REQUESTS);
            scope.spawn(move || {
                for input in inputs {
                    // submit() blocks for admission only; wait() blocks
                    // until the service thread ticks the request through.
                    let ticket = client.submit(tenant, layer, input).expect("admission");
                    ticket.wait().expect("completion");
                }
            });
        }
    });

    // Drain and take the warm server back for inspection.
    let server = handle.shutdown();

    println!("tenant   requests  hit_rate  bank_bytes  epoch");
    for &(tenant, layer) in &[(search, search_fc), (embed, embed_fc)] {
        let session = server.session(tenant).expect("registered tenant");
        let stats = session.layer_stats(layer).expect("registered layer");
        let lookups = stats.hits + stats.maus + stats.mnus;
        println!(
            "{:<8} {:>8}  {:>7.1}%  {:>10}  {:>5}",
            server.tenant_name(tenant).expect("named tenant"),
            server.served(tenant).expect("served count"),
            100.0 * stats.hits as f64 / lookups.max(1) as f64,
            session.bank_bytes(),
            session.epoch(),
        );
    }

    println!("\nmemory budget: {:?} bytes", server.config().memory_budget);
    println!(
        "total resident after final tick: {} bytes",
        server.bank_bytes()
    );
    println!("evictions: {}", server.evictions());
    for e in server.eviction_log() {
        println!(
            "  tick {:>3}: evicted {} ({} bytes freed)",
            e.tick,
            server.tenant_name(e.tenant).expect("named tenant"),
            e.bytes_freed
        );
    }
    Ok(())
}
