//! The paper's VGG-13 case study (§VII-B) end to end: simulate a training
//! iteration of full-geometry VGG-13 on the MERCURY accelerator and print
//! the per-layer view of Figure 15 plus the headline speedup.
//!
//! ```text
//! cargo run --release --example vgg13_case_study
//! ```

use mercury_bench::{simulate_model, ModelSimConfig};
use mercury_models::vgg13;

fn main() {
    let spec = vgg13();
    let cfg = ModelSimConfig::default();
    let report = simulate_model(&spec, &cfg);

    println!("VGG-13 on MERCURY (row stationary, 168 PEs, 1024-entry 16-way MCACHE)");
    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>8} {:>6}",
        "layer", "hit%", "mercury_cyc", "baseline_cyc", "speedup", "uniq"
    );
    for (layer, stats) in spec.layers.iter().zip(&report.layers) {
        println!(
            "{:<10} {:>9.1}% {:>14} {:>14} {:>7.2}x {:>6}",
            layer.name(),
            100.0 * stats.similarity(),
            stats.cycles.total(),
            stats.cycles.baseline,
            stats.cycles.speedup(),
            stats.unique_vectors / (layer.reuse_scopes() as u64 * 3).max(1),
        );
    }
    let total = report.total_cycles();
    println!();
    println!(
        "total: {} -> {} cycles, speedup {:.2}x (paper: 1.89x)",
        total.baseline,
        total.total(),
        report.speedup()
    );
}
