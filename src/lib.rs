//! Workspace facade for the MERCURY reproduction (HPCA 2023).
//!
//! Re-exports every subsystem crate under one roof so downstream users can
//! depend on a single crate, and anchors the cross-crate integration tests
//! (`tests/`) and runnable walkthroughs (`examples/`).
//!
//! The layering, bottom to top:
//!
//! | module        | crate               | role                                        |
//! |---------------|---------------------|---------------------------------------------|
//! | [`tensor`]    | `mercury-tensor`    | dense f32 tensors, im2col, deterministic RNG |
//! | [`rpq`]       | `mercury-rpq`       | random-projection signatures                 |
//! | [`mcache`]    | `mercury-mcache`    | signature-indexed memoization cache          |
//! | [`accel`]     | `mercury-accel`     | cycle-level accelerator model                |
//! | [`workloads`] | `mercury-workloads` | deterministic synthetic datasets             |
//! | [`core`]      | `mercury-core`      | the reuse engines + run-time adaptation      |
//! | [`dnn`]       | `mercury-dnn`       | from-scratch training substrate              |
//! | [`models`]    | `mercury-models`    | the twelve evaluated network specs           |
//! | [`baselines`] | `mercury-baselines` | upper-bound comparison schemes               |
//! | [`fpga`]      | `mercury-fpga`      | Virtex-7 resource/power model                |
//! | [`bench`](mod@bench) | `mercury-bench` | figure/table experiment harness          |

#![warn(missing_docs)]

pub use mercury_accel as accel;
pub use mercury_baselines as baselines;
pub use mercury_bench as bench;
pub use mercury_core as core;
pub use mercury_dnn as dnn;
pub use mercury_fpga as fpga;
pub use mercury_mcache as mcache;
pub use mercury_models as models;
pub use mercury_rpq as rpq;
pub use mercury_tensor as tensor;
pub use mercury_workloads as workloads;
