//! Determinism guarantees: every run of the reuse engine (and of the
//! model-level simulator above it) seeded identically must be
//! bit-identical — outputs, reuse statistics, and cycle accounting alike.
//!
//! This is the contract future parallelism work must preserve: any
//! sharded/threaded execution has to reduce to the same stats as the
//! sequential reference for the same `mercury_tensor::rng` seed.

use mercury_bench::{
    simulate_model, simulate_model_serial, simulate_model_with_workers, ModelSimConfig,
};
use mercury_core::{
    AttentionEngine, ConvEngine, FcEngine, LayerOp, MercuryConfig, MercurySession, ReuseEngine,
};
use mercury_models::{mobilenet_v2, transformer, vgg13};
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// One fixed workload: a batch of inputs with mixed similarity, driven
/// through a fresh `ConvEngine`, returning everything observable.
fn conv_run(engine_seed: u64, workload_seed: u64) -> Vec<(Tensor, u64, u64, u64, u64, u64)> {
    let mut rng = Rng::new(workload_seed);
    let mut engine = ConvEngine::try_new(MercuryConfig::default(), engine_seed).unwrap();
    let kernels = Tensor::randn(&[6, 2, 3, 3], &mut rng);
    let mut out = Vec::new();
    for step in 0..4 {
        // Alternate smooth (high-reuse) and random (low-reuse) inputs.
        let input = if step % 2 == 0 {
            Tensor::full(&[2, 10, 10], 0.25 + step as f32 * 0.1)
        } else {
            Tensor::randn(&[2, 10, 10], &mut rng)
        };
        let fwd = engine
            .forward(LayerOp::conv(&input, &kernels, 1, 1))
            .unwrap();
        let stats = fwd.report.stats;
        out.push((
            fwd.output,
            stats.hits,
            stats.maus,
            stats.mnus,
            stats.cycles.total(),
            stats.cycles.baseline,
        ));
        engine.grow_signature();
    }
    out
}

#[test]
fn conv_engine_runs_are_bit_identical_for_equal_seeds() {
    let a = conv_run(42, 7);
    let b = conv_run(42, 7);
    assert_eq!(a.len(), b.len());
    for (step, (x, y)) in a.iter().zip(&b).enumerate() {
        // Tensor equality is exact f32 bit-pattern equality here: both
        // runs must take the same reuse decisions in the same order.
        assert_eq!(x.0, y.0, "outputs diverge at step {step}");
        assert_eq!(
            (x.1, x.2, x.3, x.4, x.5),
            (y.1, y.2, y.3, y.4, y.5),
            "stats diverge at step {step}"
        );
    }
}

#[test]
fn conv_engine_seed_actually_matters() {
    // Guard against a trivially-passing twin: different engine seeds give
    // different projection matrices, which must show up somewhere in the
    // observable behaviour of a mixed workload.
    let a = conv_run(42, 7);
    let b = conv_run(43, 7);
    assert_ne!(a, b, "engine seed has no observable effect");
}

#[test]
fn fc_engine_runs_are_bit_identical_for_equal_seeds() {
    let run = |seed: u64| {
        let mut rng = Rng::new(seed);
        let mut engine = FcEngine::try_new(MercuryConfig::default(), 99).unwrap();
        let inputs = Tensor::randn(&[16, 12], &mut rng);
        let weights = Tensor::randn(&[12, 8], &mut rng);
        let fwd = engine.forward(LayerOp::fc(&inputs, &weights)).unwrap();
        let mut att_engine = AttentionEngine::try_new(MercuryConfig::default(), 99).unwrap();
        let att = att_engine
            .forward(LayerOp::attention(&Tensor::randn(&[6, 8], &mut rng)))
            .unwrap();
        (
            fwd.output,
            fwd.report.stats.hits,
            fwd.report.stats.cycles.total(),
            att.output,
            att.report.stats.hits,
            att.report.stats.cycles.total(),
        )
    };
    assert_eq!(run(11), run(11));
}

#[test]
fn session_streams_are_bit_identical_for_equal_seeds() {
    // The persistent-session path must honour the same contract as the
    // batch engines: a session is a pure function of (config, seed,
    // submitted stream).
    let run = |seed: u64| {
        let mut rng = Rng::new(seed);
        let mut session = MercurySession::new(MercuryConfig::default(), 55).unwrap();
        let conv = session
            .register_conv(Tensor::randn(&[4, 1, 3, 3], &mut rng), 1, 1)
            .unwrap();
        let att = session.register_attention().unwrap();
        let mut out = Vec::new();
        for step in 0..3 {
            let img = if step % 2 == 0 {
                Tensor::full(&[1, 9, 9], 0.5)
            } else {
                Tensor::randn(&[1, 9, 9], &mut rng)
            };
            let fwd = session.submit(conv, &img).unwrap();
            out.push((
                fwd.output,
                fwd.report.stats.hits,
                fwd.report.stats.maus,
                fwd.report.stats.cycles.total(),
            ));
            let seq = Tensor::randn(&[5, 6], &mut rng);
            let a = session.submit(att, &seq).unwrap();
            out.push((
                a.output,
                a.report.stats.hits,
                a.report.stats.maus,
                a.report.stats.cycles.total(),
            ));
            if step == 1 {
                session.advance_epoch();
            }
        }
        out
    };
    assert_eq!(run(23), run(23));
    assert_ne!(run(23), run(24), "workload seed has no observable effect");
}

#[test]
fn model_simulation_is_bit_identical_for_equal_configs() {
    // The full stack above the engine: workload synthesis, MCACHE probes,
    // and the cycle simulator, twice from a clean state.
    let cfg = ModelSimConfig {
        sampled_channels: 2,
        ..ModelSimConfig::default()
    };
    let a = simulate_model(&vgg13(), &cfg);
    let b = simulate_model(&vgg13(), &cfg);
    assert_eq!(a, b, "model-level simulation must be deterministic");

    let different_seed = ModelSimConfig {
        seed: cfg.seed ^ 1,
        ..cfg
    };
    let c = simulate_model(&vgg13(), &different_seed);
    assert_ne!(a, c, "simulation seed has no observable effect");
}

#[test]
fn sharded_simulation_matches_serial_reference() {
    // The sharded `simulate_model` distributes layers across threads; every
    // (layer, pass) is independently seeded, so the full per-layer report —
    // stats, cycle accounting, detection flags — must be bit-identical to
    // the serial reference, for every model family (conv-heavy, depthwise,
    // and attention).
    let cfg = ModelSimConfig {
        sampled_channels: 2,
        ..ModelSimConfig::default()
    };
    for spec in [vgg13(), mobilenet_v2(), transformer()] {
        let serial = simulate_model_serial(&spec, &cfg);
        // Pin an explicit multi-worker run: on single-core machines the
        // auto-sized `simulate_model` would fall back to serial and this
        // test would silently compare serial against itself.
        for workers in [2, 4] {
            let sharded = simulate_model_with_workers(&spec, &cfg, workers);
            assert_eq!(
                sharded, serial,
                "{}-worker and serial reports diverge for {}",
                workers, spec.name
            );
        }
        let auto = simulate_model(&spec, &cfg);
        assert_eq!(
            auto, serial,
            "auto-sized sharded report diverges for {}",
            spec.name
        );
    }
}

#[test]
fn sharded_simulation_bitwise_stable_across_runs() {
    // Thread scheduling must not leak into results: repeated sharded runs
    // agree exactly, including totals.
    let cfg = ModelSimConfig::default();
    let a = simulate_model(&mobilenet_v2(), &cfg);
    let b = simulate_model(&mobilenet_v2(), &cfg);
    assert_eq!(a, b);
    assert_eq!(a.total_cycles(), b.total_cycles());
}
