//! Cross-crate integration: the full MERCURY pipeline from tensors through
//! signatures, MCACHE, the reuse engines (driven through the unified
//! `ReuseEngine` trait), and the cycle simulator.

use mercury_core::{AttentionEngine, ConvEngine, FcEngine, LayerOp, MercuryConfig, ReuseEngine};
use mercury_tensor::conv::conv2d_multi;
use mercury_tensor::rng::Rng;
use mercury_tensor::{ops, Tensor};

#[test]
fn conv_accounting_is_self_consistent() {
    let mut rng = Rng::new(1);
    let input = Tensor::randn(&[2, 12, 12], &mut rng);
    let kernels = Tensor::randn(&[8, 2, 3, 3], &mut rng);
    let mut engine = ConvEngine::try_new(MercuryConfig::default(), 5).unwrap();
    let out = engine
        .forward(LayerOp::conv(&input, &kernels, 1, 1))
        .unwrap();

    let stats = out.stats();
    // Every vector is classified exactly once per channel.
    assert_eq!(stats.total_vectors(), 2 * 144);
    // Dot-product ledger covers all (vector, filter) pairs.
    assert_eq!(
        stats.cycles.reused_dots + stats.cycles.computed_dots,
        (2 * 144 * 8) as u64
    );
    // Cycles are positive and the baseline is design-independent.
    assert!(stats.cycles.baseline > 0);
    assert!(stats.cycles.total() > 0);
}

#[test]
fn smooth_inputs_reuse_heavily_and_stay_accurate() {
    // Natural-image-like input: repeated exact tiles.
    let mut tile_rng = Rng::new(2);
    let tile: Vec<f32> = (0..16).map(|_| tile_rng.next_normal()).collect();
    let mut image = Tensor::zeros(&[1, 16, 16]);
    for y in 0..16 {
        for x in 0..16 {
            image.set(&[0, y, x], tile[(y % 4) * 4 + (x % 4)]);
        }
    }
    let kernels = Tensor::randn(&[16, 1, 3, 3], &mut tile_rng);

    let mut engine = ConvEngine::try_new(MercuryConfig::default(), 9).unwrap();
    let out = engine
        .forward(LayerOp::conv(&image, &kernels, 1, 1))
        .unwrap();
    assert!(
        out.stats().similarity() > 0.5,
        "tiled image should reuse >50%, got {:.2}",
        out.stats().similarity()
    );

    // Exact-repeat reuse must be numerically harmless.
    let exact = conv2d_multi(&image, &kernels, 1, 1).unwrap();
    let err = out.output.sub(&exact).unwrap().norm_sq().sqrt() / exact.norm_sq().sqrt();
    assert!(err < 0.05, "relative error {err} too high for exact tiles");
}

#[test]
fn backward_signature_reuse_chains_through_engine() {
    // Forward saves signatures; a gradient convolution with matching
    // geometry reloads them and pays no signature cycles.
    let mut rng = Rng::new(3);
    let input = Tensor::full(&[1, 10, 10], 0.3);
    let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);
    let mut engine = ConvEngine::try_new(MercuryConfig::default(), 11).unwrap();

    let fwd = engine
        .forward(LayerOp::conv(&input, &kernels, 1, 1))
        .unwrap();
    assert!(fwd.stats().cycles.signature > 0);

    let bwd = engine
        .forward_reusing(
            LayerOp::conv(&input, &kernels, 1, 1),
            &fwd.report.signatures,
        )
        .unwrap();
    // Signature *generation* is skipped; only the hitmap rebuild's
    // insertion-conflict serialization (a few cycles) remains.
    assert!(
        bwd.stats().cycles.signature < 10,
        "reloaded signatures should cost almost nothing, got {}",
        bwd.stats().cycles.signature
    );
    assert!(bwd.stats().cycles.signature < fwd.stats().cycles.signature);
    assert!(bwd.stats().cycles.total() < fwd.stats().cycles.total());
}

#[test]
fn fc_and_attention_engines_agree_with_linear_algebra() {
    let mut rng = Rng::new(4);
    let inputs = Tensor::randn(&[12, 10], &mut rng);
    let weights = Tensor::randn(&[10, 6], &mut rng);
    let mut fc_engine = FcEngine::try_new(MercuryConfig::default(), 13).unwrap();

    let fc = fc_engine.forward(LayerOp::fc(&inputs, &weights)).unwrap();
    let exact = ops::matmul(&inputs, &weights).unwrap();
    for (a, b) in fc.output.data().iter().zip(exact.data()) {
        assert!((a - b).abs() < 1e-3);
    }

    let x = Tensor::randn(&[6, 8], &mut rng);
    let mut att_engine = AttentionEngine::try_new(MercuryConfig::default(), 13).unwrap();
    let att = att_engine.forward(LayerOp::attention(&x)).unwrap();
    let xt = ops::transpose(&x).unwrap();
    let want = ops::matmul(&ops::matmul(&x, &xt).unwrap(), &x).unwrap();
    for (a, b) in att.output.data().iter().zip(want.data()) {
        assert!((a - b).abs() < 1e-2);
    }
}

#[test]
fn engines_reject_foreign_op_families() {
    // The unified trait makes op/engine mismatches a typed error rather
    // than a panic or silent misuse.
    let x = Tensor::zeros(&[4, 4]);
    let weights = Tensor::zeros(&[4, 2]);
    let mut conv = ConvEngine::try_new(MercuryConfig::default(), 1).unwrap();
    let mut fc = FcEngine::try_new(MercuryConfig::default(), 1).unwrap();
    let mut att = AttentionEngine::try_new(MercuryConfig::default(), 1).unwrap();
    assert!(conv.forward(LayerOp::fc(&x, &weights)).is_err());
    assert!(fc.forward(LayerOp::attention(&x)).is_err());
    assert!(att.forward(LayerOp::conv(&x, &weights, 1, 0)).is_err());
}

#[test]
fn signature_growth_shrinks_reuse_monotonically() {
    // Grow the signature: reuse can only stay equal or shrink (stricter
    // matching), mirroring the adaptation trade-off of §III-D.
    let mut rng = Rng::new(6);
    let image = Tensor::randn(&[1, 12, 12], &mut rng).scale(0.02);
    let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);

    let config = MercuryConfig::builder()
        .initial_signature_bits(4)
        .build()
        .unwrap();
    let mut engine = ConvEngine::try_new(config, 21).unwrap();
    let mut previous_hits = u64::MAX;
    for _ in 0..4 {
        let out = engine
            .forward(LayerOp::conv(&image, &kernels, 1, 1))
            .unwrap();
        assert!(
            out.stats().hits <= previous_hits,
            "hits must not grow with longer signatures"
        );
        previous_hits = out.stats().hits;
        for _ in 0..8 {
            engine.grow_signature();
        }
    }
}
