//! Cross-crate integration: the full MERCURY pipeline from tensors through
//! signatures, MCACHE, the reuse engine, and the cycle simulator.

use mercury_core::{ConvEngine, FcEngine, MercuryConfig};
use mercury_tensor::conv::conv2d_multi;
use mercury_tensor::rng::Rng;
use mercury_tensor::{ops, Tensor};

#[test]
fn conv_accounting_is_self_consistent() {
    let mut rng = Rng::new(1);
    let input = Tensor::randn(&[2, 12, 12], &mut rng);
    let kernels = Tensor::randn(&[8, 2, 3, 3], &mut rng);
    let mut engine = ConvEngine::new(MercuryConfig::default(), 5);
    let out = engine.forward(&input, &kernels, 1, 1).unwrap();

    let stats = out.stats;
    // Every vector is classified exactly once per channel.
    assert_eq!(stats.total_vectors(), 2 * 144);
    // Dot-product ledger covers all (vector, filter) pairs.
    assert_eq!(
        stats.cycles.reused_dots + stats.cycles.computed_dots,
        (2 * 144 * 8) as u64
    );
    // Cycles are positive and the baseline is design-independent.
    assert!(stats.cycles.baseline > 0);
    assert!(stats.cycles.total() > 0);
}

#[test]
fn smooth_inputs_reuse_heavily_and_stay_accurate() {
    // Natural-image-like input: repeated exact tiles.
    let mut tile_rng = Rng::new(2);
    let tile: Vec<f32> = (0..16).map(|_| tile_rng.next_normal()).collect();
    let mut image = Tensor::zeros(&[1, 16, 16]);
    for y in 0..16 {
        for x in 0..16 {
            image.set(&[0, y, x], tile[(y % 4) * 4 + (x % 4)]);
        }
    }
    let kernels = Tensor::randn(&[16, 1, 3, 3], &mut tile_rng);

    let mut engine = ConvEngine::new(MercuryConfig::default(), 9);
    let out = engine.forward(&image, &kernels, 1, 1).unwrap();
    assert!(
        out.stats.similarity() > 0.5,
        "tiled image should reuse >50%, got {:.2}",
        out.stats.similarity()
    );

    // Exact-repeat reuse must be numerically harmless.
    let exact = conv2d_multi(&image, &kernels, 1, 1).unwrap();
    let err = out.output.sub(&exact).unwrap().norm_sq().sqrt() / exact.norm_sq().sqrt();
    assert!(err < 0.05, "relative error {err} too high for exact tiles");
}

#[test]
fn backward_signature_reuse_chains_through_engine() {
    // Forward saves signatures; a gradient convolution with matching
    // geometry reloads them and pays no signature cycles.
    let mut rng = Rng::new(3);
    let input = Tensor::full(&[1, 10, 10], 0.3);
    let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);
    let mut engine = ConvEngine::new(MercuryConfig::default(), 11);

    let fwd = engine.forward(&input, &kernels, 1, 1).unwrap();
    assert!(fwd.stats.cycles.signature > 0);

    let bwd = engine
        .forward_reusing(&input, &kernels, 1, 1, &fwd.signatures)
        .unwrap();
    // Signature *generation* is skipped; only the hitmap rebuild's
    // insertion-conflict serialization (a few cycles) remains.
    assert!(
        bwd.stats.cycles.signature < 10,
        "reloaded signatures should cost almost nothing, got {}",
        bwd.stats.cycles.signature
    );
    assert!(bwd.stats.cycles.signature < fwd.stats.cycles.signature);
    assert!(bwd.stats.cycles.total() < fwd.stats.cycles.total());
}

#[test]
fn fc_and_attention_engines_agree_with_linear_algebra() {
    let mut rng = Rng::new(4);
    let inputs = Tensor::randn(&[12, 10], &mut rng);
    let weights = Tensor::randn(&[10, 6], &mut rng);
    let mut engine = FcEngine::new(MercuryConfig::default(), 13);

    let fc = engine.forward(&inputs, &weights).unwrap();
    let exact = ops::matmul(&inputs, &weights).unwrap();
    for (a, b) in fc.output.data().iter().zip(exact.data()) {
        assert!((a - b).abs() < 1e-3);
    }

    let x = Tensor::randn(&[6, 8], &mut rng);
    let att = engine.attention(&x).unwrap();
    let xt = ops::transpose(&x).unwrap();
    let want = ops::matmul(&ops::matmul(&x, &xt).unwrap(), &x).unwrap();
    for (a, b) in att.output.data().iter().zip(want.data()) {
        assert!((a - b).abs() < 1e-2);
    }
}

#[test]
fn signature_growth_shrinks_reuse_monotonically() {
    // Grow the signature: reuse can only stay equal or shrink (stricter
    // matching), mirroring the adaptation trade-off of §III-D.
    let mut rng = Rng::new(6);
    let image = Tensor::randn(&[1, 12, 12], &mut rng).scale(0.02);
    let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);

    let config = MercuryConfig {
        initial_signature_bits: 4,
        ..MercuryConfig::default()
    };
    let mut engine = ConvEngine::new(config, 21);
    let mut previous_hits = u64::MAX;
    for _ in 0..4 {
        let out = engine.forward(&image, &kernels, 1, 1).unwrap();
        assert!(
            out.stats.hits <= previous_hits,
            "hits must not grow with longer signatures"
        );
        previous_hits = out.stats.hits;
        for _ in 0..8 {
            engine.grow_signature();
        }
    }
}
