//! Assertion-backed smoke test that the threaded backend really drives
//! the **persistent worker pool** — not the inline small-region
//! short-circuit, and not a silent collapse to serial.
//!
//! CI's threaded test leg runs this with `MERCURY_EXPECT_POOL=1`, which
//! turns the "backend resolved to serial" escape hatch into a hard
//! failure: if the env-selected backend stops reaching the pool (a
//! heuristic regression, a parse regression, a 1-core runner), the
//! matrix leg goes red instead of silently testing serial twice.

use mercury_tensor::exec::{Executor, ExecutorKind};
use mercury_tensor::tune::DispatchTuning;
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

/// Runs one deliberately chunky region and asserts it was dispatched to
/// the pool and executed by more than one thread.
fn assert_pool_engaged(exec: &Executor, label: &str) {
    let before = exec
        .pool_stats()
        .unwrap_or_else(|| panic!("{label}: parallel backend must expose pool stats"));
    let threads = Mutex::new(HashSet::new());
    // Items sleep long enough that the parked workers provably wake and
    // claim some before the caller can drain the cursor alone.
    let out = exec.map_indexed(16, |i| {
        threads.lock().unwrap().insert(std::thread::current().id());
        std::thread::sleep(Duration::from_millis(2));
        i * 3
    });
    assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>(), "{label}");
    let after = exec.pool_stats().unwrap();
    assert!(
        after.regions_dispatched > before.regions_dispatched,
        "{label}: the region must dispatch to the pool, not inline \
         (dispatched {} -> {}, inlined {} -> {})",
        before.regions_dispatched,
        after.regions_dispatched,
        before.regions_inlined,
        after.regions_inlined,
    );
    let distinct = threads.lock().unwrap().len();
    assert!(
        distinct > 1,
        "{label}: items all ran on one thread ({distinct}) — workers never woke"
    );
}

#[test]
fn env_selected_backend_engages_pool() {
    let kind = ExecutorKind::from_env_or(ExecutorKind::Serial);
    let exec = Executor::from_kind(kind);
    if !exec.is_parallel() {
        assert!(
            std::env::var("MERCURY_EXPECT_POOL").is_err(),
            "MERCURY_EXPECT_POOL is set but {kind:?} resolved to the serial backend \
             (available_parallelism = {:?}); the threaded CI leg is not exercising the pool",
            std::thread::available_parallelism(),
        );
        eprintln!("skipping pool assertions: {kind:?} resolves to serial here");
        return;
    }
    assert_pool_engaged(&exec, "env-selected backend");
}

#[test]
fn pinned_pool_engages_everywhere() {
    // Independent of the environment and the core count: an explicit
    // width forces a pool even on a 1-core box.
    assert_pool_engaged(&Executor::threaded(4), "threaded:4");
}

#[test]
fn tiny_regions_take_the_inline_short_circuit() {
    // The other half of the contract: a region declared tiny must NOT
    // wake the pool.
    let exec = Executor::threaded(4);
    let before = exec.pool_stats().unwrap();
    let out = exec.map_indexed_sized(4, 1, |i| i + 1);
    assert_eq!(out, vec![1, 2, 3, 4]);
    let after = exec.pool_stats().unwrap();
    assert_eq!(after.regions_dispatched, before.regions_dispatched);
    assert_eq!(after.regions_inlined, before.regions_inlined + 1);
}

#[test]
fn tuned_dispatch_floor_flips_the_same_region_between_inline_and_pool() {
    // The autotuning contract from the outside: one identical region,
    // two profiles, two scheduling outcomes — and the pool counters
    // prove which path ran, so a calibrated profile's effect is
    // observable rather than inferred from wall-clock.
    let region = |exec: &Executor| {
        let out = exec.map_indexed_sized(4, 1 << 10, |i| i * 7);
        assert_eq!(out, vec![0, 7, 14, 21]);
    };

    let lax = Executor::threaded_tuned(
        2,
        DispatchTuning {
            dispatch_min_work: 1,
            ..DispatchTuning::default()
        },
    );
    let before = lax.pool_stats().unwrap();
    region(&lax);
    let after = lax.pool_stats().unwrap();
    assert_eq!(after.regions_dispatched, before.regions_dispatched + 1);
    assert_eq!(after.regions_inlined, before.regions_inlined);

    let strict = Executor::threaded_tuned(
        2,
        DispatchTuning {
            dispatch_min_work: usize::MAX,
            ..DispatchTuning::default()
        },
    );
    let before = strict.pool_stats().unwrap();
    region(&strict);
    let after = strict.pool_stats().unwrap();
    assert_eq!(after.regions_dispatched, before.regions_dispatched);
    assert_eq!(after.regions_inlined, before.regions_inlined + 1);
}

#[test]
fn width_cap_from_tuning_bounds_the_auto_sized_pool() {
    // A profile's measured best width caps auto-sizing (threads = 0) but
    // never an explicitly pinned width — the determinism suites
    // deliberately oversubscribe 1-core machines.
    let capped = Executor::threaded_tuned(
        0,
        DispatchTuning {
            max_pool_width: 1,
            ..DispatchTuning::default()
        },
    );
    assert!(!capped.is_parallel(), "width cap 1 must collapse to serial");
    let pinned = Executor::threaded_tuned(
        8,
        DispatchTuning {
            max_pool_width: 1,
            ..DispatchTuning::default()
        },
    );
    assert_eq!(pinned.threads(), 8, "explicit widths are never capped");
}

#[test]
fn panicked_regions_are_counted_and_the_pool_stays_live() {
    // A panicking region must (1) surface the panic to the caller, (2)
    // increment `regions_panicked` so a chaos run's pool accounting is
    // auditable, and (3) leave every worker alive — a silently shrinking
    // pool after a fault is a hard failure, not a perf footnote.
    let exec = Executor::threaded(4);
    assert_eq!(exec.pool_stats().unwrap().regions_panicked, 0);
    for round in 1..=3u64 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.map_indexed(16, |i| {
                assert!(i != 9, "injected region fault");
                i
            })
        }));
        assert!(
            result.is_err(),
            "round {round}: panic must reach the caller"
        );
        let stats = exec.pool_stats().unwrap();
        assert_eq!(stats.regions_panicked, round);
        assert_eq!(stats.threads, 4, "round {round}: pool width shrank");
    }
    // Liveness: the same pool still executes a clean multi-thread region.
    assert_pool_engaged(&exec, "post-panic liveness");
    assert_eq!(
        exec.pool_stats().unwrap().regions_panicked,
        3,
        "clean regions do not move the fault counter"
    );
}
