//! Chaos suite: deterministic fault injection against the session facade.
//!
//! Only compiled with the default-off `fault-inject` feature (CI's chaos
//! leg runs `cargo test --features fault-inject` under both executors).
//! Every test opens the process-global [`mercury_faults::harness`], which
//! serializes chaos tests and guarantees a reset registry.
//!
//! What this suite pins, per ISSUE 7:
//! - injected faults surface **deterministically**: the same request
//!   stream faults at the same request on every executor;
//! - a panic escaping an engine poisons **exactly** the involved layer —
//!   untouched layers keep serving bit-identical results;
//! - `recover()` + exact-compute warm-up produces outputs bit-identical
//!   to a fresh session that computes exactly;
//! - the session keeps serving after containment (no wedged pool, no
//!   stuck locks).

#![cfg(feature = "fault-inject")]

use mercury_core::{ExecutorKind, LayerHealth, MercuryConfig, MercuryError, MercurySession};
use mercury_faults::{harness, FaultAction, FaultSite, FaultSpec};
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

const EXECUTORS: [ExecutorKind; 2] = [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 8 }];

fn config(kind: ExecutorKind) -> MercuryConfig {
    MercuryConfig::builder()
        .executor(kind)
        .recovery_warmup(1)
        .build()
        .unwrap()
}

/// A session with one conv, one fc, and one attention layer, plus the
/// deterministic inputs the tests feed them.
struct Rig {
    session: MercurySession,
    conv: mercury_core::LayerId,
    fc: mercury_core::LayerId,
    att: mercury_core::LayerId,
}

fn rig(kind: ExecutorKind, seed: u64) -> Rig {
    let mut rng = Rng::new(seed);
    let mut session = MercurySession::new(config(kind), seed).unwrap();
    let conv = session
        .register_conv(Tensor::randn(&[2, 1, 3, 3], &mut rng), 1, 0)
        .unwrap();
    let fc = session
        .register_fc(Tensor::randn(&[8, 4], &mut rng))
        .unwrap();
    let att = session.register_attention().unwrap();
    Rig {
        session,
        conv,
        fc,
        att,
    }
}

fn img() -> Tensor {
    Tensor::full(&[1, 8, 8], 0.4)
}

fn rows(seed: u64) -> Tensor {
    Tensor::randn(&[3, 8], &mut Rng::new(seed))
}

fn seq(seed: u64) -> Tensor {
    Tensor::randn(&[4, 5], &mut Rng::new(seed))
}

#[test]
fn channel_panic_poisons_only_the_involved_layer() {
    for kind in EXECUTORS {
        // Reference: an identical session that never sees the fault and
        // never receives the conv requests.
        let mut reference = rig(kind, 70);
        let want_fc = reference.session.submit(reference.fc, &rows(1)).unwrap();
        let want_att = reference.session.submit(reference.att, &seq(2)).unwrap();

        let mut r = rig(kind, 70);
        let h = harness();
        h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 1));

        // The injected panic surfaces as a typed, attributed error...
        let err = r.session.submit(r.conv, &img()).unwrap_err();
        match &err {
            MercuryError::EnginePanic { layer, message } => {
                assert_eq!(*layer, r.conv, "{kind:?}");
                assert!(
                    message.contains("injected panic at channel shard"),
                    "{kind:?}: {message}"
                );
            }
            other => panic!("{kind:?}: expected EnginePanic, got {other}"),
        }
        assert_eq!(h.fired().len(), 1);

        // ...poisoning exactly the involved layer: the conv refuses until
        // recovery, the untouched layers answer bit-identically to the
        // never-failed session.
        assert_eq!(r.session.layer_health(r.conv), Some(LayerHealth::Poisoned));
        assert_eq!(r.session.layer_submits(r.conv), Some(0));
        assert_eq!(
            r.session.submit(r.conv, &img()).unwrap_err(),
            MercuryError::Poisoned(r.conv),
            "{kind:?}"
        );
        let (fc_in, att_in) = (rows(1), seq(2));
        for (id, input, want) in [(r.fc, &fc_in, &want_fc), (r.att, &att_in, &want_att)] {
            assert_eq!(r.session.layer_health(id), Some(LayerHealth::Healthy));
            let got = r.session.submit(id, input).unwrap();
            assert_eq!(got.output, want.output, "{kind:?}");
            assert_eq!(got.report, want.report, "{kind:?}");
        }

        // Recovery: quarantined bank, exact warm-up bit-identical to a
        // fresh exact session, then reuse re-arms.
        r.session.recover(r.conv).unwrap();
        let mut exact = rig(kind, 70);
        exact.session.set_detection(exact.conv, false).unwrap();
        let want = exact.session.submit(exact.conv, &img()).unwrap();
        let got = r.session.submit(r.conv, &img()).unwrap();
        assert!(got.report.degraded, "{kind:?}");
        assert_eq!(got.output, want.output, "{kind:?}");
        assert_eq!(got.stats(), want.stats(), "{kind:?}");
        assert_eq!(r.session.layer_health(r.conv), Some(LayerHealth::Healthy));
        assert!(r.session.engine(r.conv).unwrap().detection_enabled());
    }
}

#[test]
fn bank_probe_panic_surfaces_at_the_same_request_on_every_executor() {
    // [1, 10, 10] input under a 3x3 kernel = 64 patches = 64 bank-probe
    // events per submit — exactly PARALLEL_PROBE_MIN, so the threaded
    // executor takes the concurrent banked fan-out while the fault
    // ordinal is still drawn pre-fan-out in stream order.
    let input = Tensor::full(&[1, 10, 10], 0.3);
    let build = |kind| {
        let mut session = MercurySession::new(config(kind), 71).unwrap();
        let conv = session
            .register_conv(Tensor::full(&[4, 1, 3, 3], 0.1), 1, 0)
            .unwrap();
        (session, conv)
    };

    // Fault at the 3rd probe of request 3 (1-based, cumulative).
    let nth = 2 * 64 + 3;
    let mut failed_at = Vec::new();
    for kind in EXECUTORS {
        let (mut session, conv) = build(kind);
        let h = harness();
        h.arm(FaultSpec::panic_at(FaultSite::BankProbe, nth));
        let mut outputs = Vec::new();
        let failure = loop {
            match session.submit(conv, &input) {
                Ok(fwd) => outputs.push(fwd.output),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&failure, MercuryError::EnginePanic { message, .. }
                if message.contains("injected panic at bank probe")),
            "{kind:?}: {failure}"
        );
        assert_eq!(h.count(FaultSite::BankProbe), nth, "{kind:?}");
        failed_at.push((outputs.len(), outputs));
    }
    let (serial_n, serial_outputs) = &failed_at[0];
    assert_eq!(*serial_n, 2, "requests 1-2 succeed, request 3 faults");
    for (n, outputs) in &failed_at[1..] {
        assert_eq!(n, serial_n, "fault request index is executor-invariant");
        assert_eq!(outputs, serial_outputs, "pre-fault outputs bit-identical");
    }
}

#[test]
fn tag_corruption_is_deterministic_and_contained() {
    // A tag-store upset mid-stream: no error, no poisoning — the probe
    // simply matches differently — and the observable outcome is
    // identical on every executor because the corrupted ordinal is drawn
    // in stream order before the bank fan-out.
    let input = Tensor::full(&[1, 10, 10], 0.3);
    let mut runs = Vec::new();
    for kind in EXECUTORS {
        let mut session = MercurySession::new(config(kind), 72).unwrap();
        let conv = session
            .register_conv(Tensor::full(&[4, 1, 3, 3], 0.1), 1, 0)
            .unwrap();
        let h = harness();
        // Corrupt the 5th probe of the second (fully warm) submit.
        h.arm(FaultSpec {
            site: FaultSite::BankProbe,
            nth: 64 + 5,
            action: FaultAction::CorruptTag,
        });
        let warm = session.submit(conv, &input).unwrap();
        let corrupted = session.submit(conv, &input).unwrap();
        assert_eq!(h.fired().len(), 1, "{kind:?}");
        assert_eq!(
            session.layer_health(conv),
            Some(LayerHealth::Healthy),
            "{kind:?}: corruption is not a crash"
        );
        assert!(
            corrupted.stats().hits < warm.stats().hits + 64,
            "{kind:?}: a corrupted tag cannot out-hit a clean warm stream"
        );
        runs.push((warm, corrupted));
    }
    let (serial_warm, serial_corrupted) = &runs[0];
    for (warm, corrupted) in &runs[1..] {
        assert_eq!(warm.output, serial_warm.output);
        assert_eq!(warm.report, serial_warm.report);
        assert_eq!(corrupted.output, serial_corrupted.output);
        assert_eq!(corrupted.report, serial_corrupted.report);
    }
}

#[test]
fn nan_payload_is_flushed_by_recovery() {
    // GEMM chunk ordinals depend on the worker count by design (serial
    // runs one chunk per product), so this scenario pins the serial
    // executor and exercises the *containment*: a NaN planted in a
    // computed chunk propagates into the output and potentially into the
    // persistent bank — and recovery's quarantine + exact warm-up
    // restores bit-exact service.
    let mut session = MercurySession::new(config(ExecutorKind::Serial), 73).unwrap();
    let conv = session
        .register_conv(Tensor::full(&[2, 1, 3, 3], 0.1), 1, 0)
        .unwrap();
    let h = harness();
    h.arm(FaultSpec {
        site: FaultSite::GemmChunk,
        nth: 1,
        action: FaultAction::NanPayload,
    });
    let poisoned_payload = session.submit(conv, &img()).unwrap();
    assert_eq!(h.fired().len(), 1);
    assert!(
        poisoned_payload.output.data().iter().any(|v| v.is_nan()),
        "the corrupted chunk reached the output"
    );
    assert_eq!(
        session.layer_health(conv),
        Some(LayerHealth::Healthy),
        "payload corruption is silent — that is exactly why recover() exists"
    );

    // Operator response: quarantine + warm-up. Output must be bit-exact
    // against a session that never computed anything but exact results.
    session.recover(conv).unwrap();
    let mut exact = MercurySession::new(config(ExecutorKind::Serial), 73).unwrap();
    let conv_e = exact
        .register_conv(Tensor::full(&[2, 1, 3, 3], 0.1), 1, 0)
        .unwrap();
    exact.set_detection(conv_e, false).unwrap();
    let want = exact.submit(conv_e, &img()).unwrap();
    let got = session.submit(conv, &img()).unwrap();
    assert!(got.report.degraded);
    assert!(got.output.data().iter().all(|v| v.is_finite()));
    assert_eq!(got.output, want.output);
}

#[test]
fn partial_batch_panic_poisons_only_involved_layers() {
    // Pool widths 1/2/8 per the satellite: a panic mid-submit_batch
    // yields Poisoned only on the involved layer, and the other layers'
    // subsequent outputs are bit-identical to a never-failed session.
    for kind in [
        ExecutorKind::Serial,
        ExecutorKind::Threaded { threads: 2 },
        ExecutorKind::Threaded { threads: 8 },
    ] {
        // Reference session: the same per-layer request streams, minus
        // the conv request that will fault.
        let mut reference = rig(kind, 74);
        let want = reference
            .session
            .submit_batch(&[
                (reference.fc, &rows(10)),
                (reference.att, &seq(11)),
                (reference.fc, &rows(12)),
            ])
            .unwrap();
        let want_fc_next = reference.session.submit(reference.fc, &rows(13)).unwrap();

        let mut r = rig(kind, 74);
        let h = harness();
        // Only the conv layer emits ChannelShard events, so the ordinal
        // is deterministic even while the batch fans layers out across
        // workers.
        h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 1));
        let fc_rows = [rows(10), rows(12)];
        let batch_err = r
            .session
            .submit_batch(&[
                (r.fc, &fc_rows[0]),
                (r.conv, &img()),
                (r.att, &seq(11)),
                (r.fc, &fc_rows[1]),
            ])
            .unwrap_err();
        assert!(
            matches!(&batch_err, MercuryError::EnginePanic { layer, .. } if *layer == r.conv),
            "{kind:?}: {batch_err}"
        );

        // Poisoning is exact: conv served nothing, the others served
        // everything and match the never-failed session bit for bit.
        assert_eq!(r.session.layer_health(r.conv), Some(LayerHealth::Poisoned));
        assert_eq!(r.session.layer_submits(r.conv), Some(0));
        assert_eq!(r.session.layer_submits(r.fc), Some(2), "{kind:?}");
        assert_eq!(r.session.layer_submits(r.att), Some(1), "{kind:?}");
        let got_fc_next = r.session.submit(r.fc, &rows(13)).unwrap();
        assert_eq!(
            r.session.layer_stats(r.fc),
            reference.session.layer_stats(reference.fc)
        );
        assert_eq!(got_fc_next.output, want_fc_next.output, "{kind:?}");
        assert_eq!(got_fc_next.report, want_fc_next.report, "{kind:?}");
        assert_eq!(
            r.session.layer_health(r.att),
            Some(LayerHealth::Healthy),
            "{kind:?}"
        );
        // And the want[] outputs really correspond: fc pos 0 == reference
        // pos 0, att pos == reference pos 1 (same per-layer order).
        assert_eq!(want.len(), 3);

        // A later batch including the poisoned layer fails only on it.
        let err = r
            .session
            .submit_batch(&[(r.att, &seq(14)), (r.conv, &img())])
            .unwrap_err();
        assert_eq!(err, MercuryError::Poisoned(r.conv), "{kind:?}");
        assert_eq!(r.session.layer_submits(r.att), Some(2), "{kind:?}");
    }
}

#[test]
fn lowest_position_error_wins_when_two_layers_fail_in_one_batch() {
    // Two layers fail inside a single submit_batch — one by injected
    // panic (conv, the batch's only ChannelShard emitter, so the ordinal
    // is deterministic under any schedule), one by input validation (fc
    // with the wrong inner dimension, side-effect-free). Whatever order
    // the pool runs them in, the *returned* error must be the
    // lowest-positioned failing request's — both ways round.
    let bad_rows = Tensor::randn(&[3, 5], &mut Rng::new(80)); // fc wants [n, 8]
    for kind in EXECUTORS {
        // Ordering 1: the fc validation failure sits at position 0, the
        // conv panic at position 1 → ShapeMismatch wins.
        let mut r = rig(kind, 80);
        let h = harness();
        h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 1));
        let att_in = seq(81);
        let err = r
            .session
            .submit_batch(&[(r.fc, &bad_rows), (r.conv, &img()), (r.att, &att_in)])
            .unwrap_err();
        assert!(
            matches!(&err, MercuryError::ShapeMismatch { layer, .. } if *layer == r.fc),
            "{kind:?}: position 0's validation error must win, got {err}"
        );
        // Both failures really happened: the higher-positioned panic
        // still fired and poisoned the conv, and the bystander served.
        assert_eq!(h.fired().len(), 1, "{kind:?}");
        assert_eq!(r.session.layer_health(r.conv), Some(LayerHealth::Poisoned));
        assert_eq!(
            r.session.layer_health(r.fc),
            Some(LayerHealth::Healthy),
            "{kind:?}: validation failures never poison"
        );
        assert_eq!(r.session.layer_submits(r.att), Some(1), "{kind:?}");
        drop(h);

        // Ordering 2: the conv panic sits at position 0, the fc
        // validation failure at position 2 → the panic wins.
        let mut r = rig(kind, 80);
        let h = harness();
        h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 1));
        let err = r
            .session
            .submit_batch(&[(r.conv, &img()), (r.att, &att_in), (r.fc, &bad_rows)])
            .unwrap_err();
        assert!(
            matches!(&err, MercuryError::EnginePanic { layer, .. } if *layer == r.conv),
            "{kind:?}: position 0's panic must win, got {err}"
        );
        assert_eq!(h.fired().len(), 1, "{kind:?}");
        assert_eq!(r.session.layer_health(r.conv), Some(LayerHealth::Poisoned));
        assert_eq!(r.session.layer_submits(r.att), Some(1), "{kind:?}");
    }
}

#[test]
fn seeded_faults_reproduce_and_recovery_is_exact() {
    // A seeded chaos run is pinned by its seed alone: the same seed arms
    // the same ordinal, fails the same request, and recovers to the same
    // bit-exact outputs — run twice to prove it.
    let spec = FaultSpec::seeded(0xC0FFEE, FaultSite::ChannelShard, 4);
    assert_eq!(
        spec,
        FaultSpec::seeded(0xC0FFEE, FaultSite::ChannelShard, 4)
    );
    let input = Tensor::full(&[4, 6, 6], 0.2);

    let run = || {
        let mut session = MercurySession::new(config(ExecutorKind::Serial), 75).unwrap();
        let conv = session
            .register_conv(Tensor::full(&[2, 4, 3, 3], 0.1), 1, 0)
            .unwrap();
        let h = harness();
        h.arm(spec);
        // 4 input channels = 4 ChannelShard events per submit; the armed
        // ordinal (1..=4) faults the very first submit.
        let err = session.submit(conv, &input).unwrap_err();
        assert!(matches!(err, MercuryError::EnginePanic { .. }), "{err}");
        let fired = h.fired();
        drop(h);
        session.recover(conv).unwrap();
        let recovered = session.submit(conv, &input).unwrap();
        assert!(recovered.report.degraded);
        (fired, recovered.output.clone())
    };

    let (fired_a, out_a) = run();
    let (fired_b, out_b) = run();
    assert_eq!(fired_a, fired_b, "same seed, same fault");
    assert_eq!(out_a, out_b, "same seed, same recovery");
}
