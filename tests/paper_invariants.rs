//! Cross-crate integration: invariants the paper states, checked against
//! the composed system.

use mercury_accel::config::Dataflow;
use mercury_accel::timing;
use mercury_bench::{simulate_model, ModelSimConfig};
use mercury_fpga::{baseline_power, baseline_resources, mercury_power, mercury_resources};
use mercury_mcache::MCacheConfig;
use mercury_models::{all_models, vgg13};

/// §III-B2 / Figure 8: pipelining takes per-bit cost from 2x to x.
#[test]
fn pipelined_signature_speedup_approaches_two() {
    for x in [3usize, 5, 7] {
        let n = 1000;
        let np = timing::signature_cycles(x, n, false) as f64;
        let p = timing::signature_cycles(x, n, true) as f64;
        let ratio = np / p;
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "x={x}: asymptotic pipeline speedup {ratio} should be ~2"
        );
    }
}

/// §VII-A: the twelve models all speed up; the geomean lands near the
/// paper's 1.97x.
#[test]
fn all_models_speed_up_with_papers_shape() {
    let cfg = ModelSimConfig::default();
    let mut log_sum = 0.0;
    let mut count = 0;
    for spec in all_models() {
        let s = simulate_model(&spec, &cfg).speedup();
        assert!(s > 1.0, "{} must speed up, got {s}", spec.name);
        log_sum += s.ln();
        count += 1;
    }
    let geomean = (log_sum / count as f64).exp();
    assert!(
        (1.6..2.3).contains(&geomean),
        "geomean {geomean} too far from the paper's 1.97"
    );
}

/// §VII-A: bigger networks save more (ResNet family ordering).
#[test]
fn bigger_resnets_save_more() {
    let cfg = ModelSimConfig::default();
    let models = all_models();
    let speedup = |name: &str| {
        let spec = models.iter().find(|m| m.name == name).unwrap();
        simulate_model(spec, &cfg).speedup()
    };
    let r50 = speedup("ResNet50");
    let r101 = speedup("ResNet101");
    let r152 = speedup("ResNet152");
    assert!(r152 > r101 && r101 > r50, "{r50} {r101} {r152}");
}

/// §VII-E / Figure 18: row stationary beats weight stationary beats input
/// stationary.
#[test]
fn dataflow_ordering_holds_at_model_level() {
    let spec = vgg13();
    let speedup = |flow: Dataflow| {
        let mut cfg = ModelSimConfig::default();
        cfg.accelerator.dataflow = flow;
        simulate_model(&spec, &cfg).speedup()
    };
    let rs = speedup(Dataflow::RowStationary);
    let ws = speedup(Dataflow::WeightStationary);
    let is = speedup(Dataflow::InputStationary);
    assert!(rs > ws && ws > is, "rs {rs} ws {ws} is {is}");
}

/// §VII-C / Figure 16: bigger caches never hurt, and 1024→2048 entries
/// gives only marginal gains.
#[test]
fn cache_size_saturates() {
    let spec = vgg13();
    let speedup = |entries: usize| {
        let cfg = ModelSimConfig {
            cache: MCacheConfig::new(entries / 16, 16, 1).unwrap(),
            ..ModelSimConfig::default()
        };
        simulate_model(&spec, &cfg).speedup()
    };
    let s512 = speedup(512);
    let s1024 = speedup(1024);
    let s2048 = speedup(2048);
    assert!(s1024 >= s512 * 0.98, "{s512} -> {s1024}");
    assert!(s2048 >= s1024 * 0.98, "{s1024} -> {s2048}");
    let marginal = s2048 / s1024;
    assert!(
        marginal < 1.1,
        "doubling past 1024 entries should be marginal, got {marginal}"
    );
}

/// Table IV: MERCURY's resource and power overheads stay in the published
/// band while DSPs (the PEs) are untouched.
#[test]
fn fpga_overheads_match_table_four() {
    let br = baseline_resources();
    let mr = mercury_resources(64, 16);
    assert_eq!(br.dsp48e1, mr.dsp48e1);
    assert!(mr.slice_luts / br.slice_luts > 3.0); // comparator network
    assert!(mr.slice_registers / br.slice_registers < 2.0);
    let power_ratio = mercury_power(64, 16).total() / baseline_power().total();
    assert!(
        (1.10..1.16).contains(&power_ratio),
        "power ratio {power_ratio} vs paper's 1.135"
    );
}

/// §III-D: adaptive stoppage never makes a model slower.
#[test]
fn stoppage_is_monotone_improvement() {
    for spec in all_models() {
        let base = ModelSimConfig {
            adaptive: false,
            ..ModelSimConfig::default()
        };
        let adaptive = ModelSimConfig {
            adaptive: true,
            ..ModelSimConfig::default()
        };
        let plain = simulate_model(&spec, &base).total_cycles().total();
        let tuned = simulate_model(&spec, &adaptive).total_cycles().total();
        assert!(tuned <= plain, "{}: {tuned} > {plain}", spec.name);
    }
}
