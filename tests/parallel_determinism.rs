//! The executor-refactor contract: the threaded backend is bit-identical
//! to the serial reference on every engine family and on multi-epoch
//! `MercurySession` streams, for pool widths 1, 2, and 8 — outputs, reuse
//! statistics, cycle accounting, and saved signatures alike.
//!
//! (`tests/determinism.rs` pins run-to-run determinism of each backend
//! against itself and the model simulator's serial reference; this suite
//! pins serial ≡ threaded across backends.)

use mercury_core::{
    AttentionEngine, ConvEngine, ExecutorKind, FcEngine, LayerForward, LayerOp, MercuryConfig,
    MercurySession, ReuseEngine,
};
use mercury_tensor::exec::Executor;
use mercury_tensor::rng::Rng;
use mercury_tensor::tune::DispatchTuning;
use mercury_tensor::Tensor;

/// The pool widths every equivalence in this suite is checked at. Width 1
/// is the threaded kind collapsing to serial scheduling; 8 exceeds this
/// container's core count, so oversubscription is covered too.
const POOLS: [usize; 3] = [1, 2, 8];

fn config(kind: ExecutorKind) -> MercuryConfig {
    MercuryConfig::builder().executor(kind).build().unwrap()
}

fn assert_same(a: &LayerForward, b: &LayerForward, what: &str) {
    assert_eq!(a.output, b.output, "{what}: outputs diverge");
    assert_eq!(a.report, b.report, "{what}: reports diverge");
}

/// Drives one engine through a mixed workload: smooth (high-reuse) and
/// random inputs, signature growth, a detection-off pass, and saved-
/// signature reuse — every code path the executor refactor touched.
fn conv_workload(engine: &mut ConvEngine) -> Vec<LayerForward> {
    let mut rng = Rng::new(7);
    let kernels = Tensor::randn(&[6, 2, 3, 3], &mut rng);
    let mut out = Vec::new();
    for step in 0..4 {
        let input = if step % 2 == 0 {
            Tensor::full(&[2, 10, 10], 0.25 + step as f32 * 0.1)
        } else {
            Tensor::randn(&[2, 10, 10], &mut rng)
        };
        let fwd = engine
            .forward(LayerOp::conv(&input, &kernels, 1, 1))
            .unwrap();
        let reused = engine
            .forward_reusing(
                LayerOp::conv(&input, &kernels, 1, 1),
                &fwd.report.signatures,
            )
            .unwrap();
        out.push(fwd);
        out.push(reused);
        if step == 1 {
            engine.set_detection(false);
            out.push(
                engine
                    .forward(LayerOp::conv(&input, &kernels, 1, 1))
                    .unwrap(),
            );
            engine.set_detection(true);
        }
        engine.grow_signature();
    }
    out
}

#[test]
fn conv_engine_threaded_pools_match_serial() {
    let mut serial = ConvEngine::try_new(config(ExecutorKind::Serial), 42).unwrap();
    let want = conv_workload(&mut serial);
    for threads in POOLS {
        let kind = ExecutorKind::Threaded { threads };
        let mut engine = ConvEngine::try_new(config(kind), 42).unwrap();
        let got = conv_workload(&mut engine);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("conv pool={threads} step={i}"));
        }
    }
}

#[test]
fn persistent_conv_engine_threaded_pools_match_serial() {
    // The persistent (banked) engine takes the other parallel path —
    // concurrent bank probes + row-sharded GEMMs under a sequential
    // channel loop — and must land on the same bits.
    let run = |kind: ExecutorKind| {
        let mut engine = ConvEngine::persistent(config(kind), 42, 8).unwrap();
        let mut rng = Rng::new(8);
        let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);
        let mut out = Vec::new();
        for step in 0..5 {
            let input = if step % 2 == 0 {
                Tensor::full(&[1, 12, 12], 0.5)
            } else {
                Tensor::randn(&[1, 12, 12], &mut rng)
            };
            out.push(
                engine
                    .forward(LayerOp::conv(&input, &kernels, 1, 1))
                    .unwrap(),
            );
            if step == 2 {
                engine.end_epoch();
            }
        }
        out
    };
    let want = run(ExecutorKind::Serial);
    for threads in POOLS {
        let got = run(ExecutorKind::Threaded { threads });
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("persistent conv pool={threads} step={i}"));
        }
    }
}

#[test]
fn fc_and_attention_threaded_pools_match_serial() {
    let mut rng = Rng::new(9);
    let inputs = Tensor::randn(&[16, 12], &mut rng);
    let weights = Tensor::randn(&[12, 8], &mut rng);
    let seq = Tensor::randn(&[9, 8], &mut rng);
    // Duplicate a few rows so HIT/forwarding paths engage.
    let mut dup = inputs.data().to_vec();
    dup[12..24].copy_from_slice(&inputs.data()[0..12]);
    let inputs = Tensor::from_vec(dup, &[16, 12]).unwrap();

    let run = |kind: ExecutorKind| {
        let mut fc = FcEngine::try_new(config(kind), 99).unwrap();
        let f = fc.forward(LayerOp::fc(&inputs, &weights)).unwrap();
        let f2 = fc
            .forward_reusing(LayerOp::fc(&inputs, &weights), &f.report.signatures)
            .unwrap();
        let mut att = AttentionEngine::try_new(config(kind), 99).unwrap();
        let a = att.forward(LayerOp::attention(&seq)).unwrap();
        [f, f2, a]
    };
    let want = run(ExecutorKind::Serial);
    for threads in POOLS {
        let got = run(ExecutorKind::Threaded { threads });
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("fc/att pool={threads} step={i}"));
        }
    }
}

/// One multi-epoch session stream: conv + fc + attention layers,
/// interleaved submits (some via `submit_batch`), an epoch boundary,
/// signature growth, and a weight update.
fn session_stream(kind: ExecutorKind) -> Vec<LayerForward> {
    session_stream_on(Executor::from_kind(kind))
}

/// [`session_stream`] on an explicit executor, so the tuning grid below
/// can drive the identical stream through arbitrarily-tuned pools.
fn session_stream_on(exec: Executor) -> Vec<LayerForward> {
    let mut rng = Rng::new(23);
    let mut session = MercurySession::new_on(config(ExecutorKind::Serial), 55, exec).unwrap();
    let conv = session
        .register_conv(Tensor::randn(&[4, 1, 3, 3], &mut rng), 1, 1)
        .unwrap();
    let fc = session
        .register_fc(Tensor::randn(&[10, 6], &mut rng))
        .unwrap();
    let att = session.register_attention().unwrap();
    let mut out = Vec::new();
    for epoch in 0..3 {
        for step in 0..3 {
            let img = if step % 2 == 0 {
                Tensor::full(&[1, 9, 9], 0.5)
            } else {
                Tensor::randn(&[1, 9, 9], &mut rng)
            };
            let rows = Tensor::randn(&[5, 10], &mut rng);
            let seq = Tensor::randn(&[5, 6], &mut rng);
            out.extend(
                session
                    .submit_batch(&[(conv, &img), (fc, &rows), (att, &seq), (conv, &img)])
                    .unwrap(),
            );
            out.push(session.submit(fc, &rows).unwrap());
        }
        if epoch == 0 {
            session.grow_signatures();
        }
        if epoch == 1 {
            session
                .update_weights(fc, Tensor::randn(&[10, 6], &mut rng))
                .unwrap();
        }
        session.advance_epoch();
    }
    out
}

#[test]
fn multi_epoch_session_streams_threaded_pools_match_serial() {
    let want = session_stream(ExecutorKind::Serial);
    for threads in POOLS {
        let got = session_stream(ExecutorKind::Threaded { threads });
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("session pool={threads} submit={i}"));
        }
    }
}

/// A batch whose layers are big enough that the engines' *inner*
/// parallel regions — row-sharded GEMMs and banked probe fan-outs —
/// exceed the pool's work-size dispatch threshold. Under
/// `submit_batch`, those engines run *inside* pool workers on the
/// session's shared pool, so every inner region must detect the nesting
/// and run inline: completing at all proves no deadlock, and the
/// serial comparison proves the inline path is bit-identical.
fn nested_session_stream(kind: ExecutorKind) -> Vec<LayerForward> {
    let mut rng = Rng::new(71);
    let mut session = MercurySession::new(config(kind), 71).unwrap();
    // 2-channel 5x5 conv over 26x26: 576 patches/channel of length 50 —
    // the per-channel probe stream and the [8, 50] x [50, 576] GEMM both
    // clear the dispatch threshold when run from the top level.
    let conv = session
        .register_conv(Tensor::randn(&[8, 2, 5, 5], &mut rng), 1, 1)
        .unwrap();
    // 40 producer rows x [64, 48] weights likewise.
    let fc = session
        .register_fc(Tensor::randn(&[64, 48], &mut rng))
        .unwrap();
    let img_smooth = Tensor::full(&[2, 26, 26], 0.5);
    let img_random = Tensor::randn(&[2, 26, 26], &mut rng);
    let rows = Tensor::randn(&[40, 64], &mut rng);
    let mut out = Vec::new();
    for epoch in 0..2 {
        for _ in 0..2 {
            out.extend(
                session
                    .submit_batch(&[
                        (conv, &img_smooth),
                        (fc, &rows),
                        (conv, &img_random),
                        (fc, &rows),
                        (conv, &img_smooth),
                    ])
                    .unwrap(),
            );
            // A top-level submit between batches: the same engines then
            // dispatch their inner regions on the pool directly (not
            // nested), so both dispatch modes interleave on one pool.
            out.push(session.submit(conv, &img_random).unwrap());
        }
        if epoch == 0 {
            session.advance_epoch();
        }
    }
    out
}

#[test]
fn nested_engine_regions_inside_submit_batch_match_serial_without_deadlock() {
    let want = nested_session_stream(ExecutorKind::Serial);
    for threads in POOLS {
        let got = nested_session_stream(ExecutorKind::Threaded { threads });
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("nested pool={threads} submit={i}"));
        }
    }
}

#[test]
fn extreme_dispatch_tunings_stay_bit_identical_across_pools() {
    // The autotuning contract: `DispatchTuning` may only move *where*
    // work runs (inline vs pool, fan-out vs serial loop), never *what*
    // it computes. The grid pins the pathological corners a calibrated
    // profile could reach — everything dispatched, nothing dispatched,
    // and probe hints so skewed that scheduling decisions flip — at
    // every pool width, against the untuned serial reference.
    let grid = [
        (
            "always-dispatch",
            DispatchTuning {
                dispatch_min_work: 1,
                probe_work_units: 1,
                parallel_probe_min: 1,
                ..DispatchTuning::default()
            },
        ),
        (
            "never-dispatch",
            DispatchTuning {
                dispatch_min_work: usize::MAX,
                ..DispatchTuning::default()
            },
        ),
        (
            "probe-heavy",
            DispatchTuning {
                probe_work_units: 1 << 20,
                parallel_probe_min: 2,
                ..DispatchTuning::default()
            },
        ),
    ];
    let want = session_stream_on(Executor::serial());
    for (name, tuning) in grid {
        // The serial backend under the same tuning: tuning must be
        // scheduling-only there too.
        let got = session_stream_on(Executor::serial_tuned(tuning));
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_same(g, w, &format!("tuning={name} serial submit={i}"));
        }
        for threads in POOLS {
            let got = session_stream_on(Executor::threaded_tuned(threads, tuning));
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_same(g, w, &format!("tuning={name} pool={threads} submit={i}"));
            }
        }
    }
}

#[test]
fn env_selected_backend_is_observationally_silent() {
    // Whatever MERCURY_EXECUTOR the suite runs under, explicitly pinned
    // serial and threaded configs agree — the env var can only change
    // scheduling, never results.
    let mut rng = Rng::new(31);
    let input = Tensor::randn(&[2, 8, 8], &mut rng);
    let kernels = Tensor::randn(&[3, 2, 3, 3], &mut rng);
    let mut default_engine = ConvEngine::try_new(MercuryConfig::default(), 5).unwrap();
    let mut serial_engine = ConvEngine::try_new(config(ExecutorKind::Serial), 5).unwrap();
    let d = default_engine
        .forward(LayerOp::conv(&input, &kernels, 1, 0))
        .unwrap();
    let s = serial_engine
        .forward(LayerOp::conv(&input, &kernels, 1, 0))
        .unwrap();
    assert_same(&d, &s, "env-default vs serial");
}
