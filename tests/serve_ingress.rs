//! The channel-driven ingress, end to end: N OS threads submitting
//! interleaved tenant traffic through clones of [`ServeClient`] must
//! produce per-tenant completion streams **bit-identical** to a
//! dedicated single-tenant [`MercurySession`] replaying the admission
//! order — at pool widths 1/2/8, under all three [`PacingPolicy`]s —
//! and [`ServeHandle::shutdown`] must drain with zero lost or
//! duplicated completions. Test names carry their pacing policy
//! (`saturation` / `deadline` / `manual`) so CI's pacing matrix can
//! select them with libtest filters.

use mercury_core::{MercuryConfig, MercurySession};
use mercury_serve::{
    EpochPolicy, PacingPolicy, ServeClient, ServeConfig, ServeError, ServeHandle, Server, TenantId,
};
use mercury_tensor::exec::ExecutorKind;
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;
use mercury_workloads::tenants::TenantMix;
use std::time::Duration;

/// The pool widths the determinism law is pinned at (the session-level
/// 1/2/8 convention).
const POOLS: [ExecutorKind; 3] = [
    ExecutorKind::Serial,
    ExecutorKind::Threaded { threads: 2 },
    ExecutorKind::Threaded { threads: 8 },
];

const FEATURES: usize = 16;
const OUTPUTS: usize = 8;
const TENANTS: usize = 3;
const REQUESTS: usize = 12;
const SEED: u64 = 0x1A6E;

fn mix() -> TenantMix {
    TenantMix::new(FEATURES, 3, 0.05, SEED)
}

/// FC weights for tenant `t`, identical on the serve and replay sides.
fn weights(t: usize) -> Tensor {
    Tensor::randn(&[FEATURES, OUTPUTS], &mut Rng::new(SEED + t as u64))
}

/// Builds a server with `TENANTS` fc tenants and returns it with the
/// per-tenant handles. Tenant 0 exercises an epoch policy so pacing
/// interacts with epoch boundaries too.
fn build_server(
    pool: ExecutorKind,
    pacing: PacingPolicy,
    queue_capacity: usize,
) -> (Server, Vec<(TenantId, mercury_core::LayerId)>) {
    let config = ServeConfig::builder()
        .executor(pool)
        .queue_capacity(queue_capacity)
        .batch_window(4)
        .pacing(pacing)
        .build()
        .unwrap();
    let mut server = Server::new(config).unwrap();
    let mut handles = Vec::new();
    for t in 0..TENANTS {
        let policy = if t == 0 {
            EpochPolicy::EveryRequests(5)
        } else {
            EpochPolicy::Never
        };
        let tenant = server
            .register_tenant(
                &format!("tenant-{t}"),
                MercuryConfig::default(),
                SEED + t as u64,
                policy,
            )
            .unwrap();
        let layer = server.register_fc(tenant, weights(t)).unwrap();
        handles.push((tenant, layer));
    }
    (server, handles)
}

/// Replays tenant `t`'s stream through a dedicated synchronous session,
/// mirroring its epoch policy at exact request counts.
fn dedicated_replay(t: usize) -> Vec<mercury_core::LayerForward> {
    let mut session = MercurySession::new(MercuryConfig::default(), SEED + t as u64).unwrap();
    let layer = session.register_fc(weights(t)).unwrap();
    let mut outputs = Vec::new();
    for (i, input) in mix().tenant_stream(t, REQUESTS).into_iter().enumerate() {
        outputs.push(session.submit(layer, &input).unwrap());
        if t == 0 && (i as u64 + 1) % 5 == 0 {
            session.advance_epoch();
        }
    }
    outputs
}

/// The core law: one submitting thread per tenant through cloned
/// clients, completions reassembled per tenant, asserted bit-identical
/// to the dedicated replay; shutdown loses and duplicates nothing.
fn concurrent_clients_match_replay(pacing: PacingPolicy) {
    let reference: Vec<Vec<mercury_core::LayerForward>> =
        (0..TENANTS).map(dedicated_replay).collect();
    for pool in POOLS {
        let (server, handles) = build_server(pool, pacing, 2 * REQUESTS);
        let handle = server.serve();
        let root = handle.client();

        // Under Manual pacing nothing ticks until shutdown's drain, so
        // wait() would deadlock the submitting threads; collect tickets
        // first and redeem them after shutdown has drained.
        let tickets: Vec<Vec<_>> = std::thread::scope(|scope| {
            let workers: Vec<_> = handles
                .iter()
                .enumerate()
                .map(|(t, &(tenant, layer))| {
                    let client = root.clone();
                    let stream = mix().tenant_stream(t, REQUESTS);
                    scope.spawn(move || {
                        stream
                            .into_iter()
                            .map(|input| client.submit(tenant, layer, input).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });

        let server = handle.shutdown();
        for (t, &(tenant, _)) in handles.iter().enumerate() {
            assert_eq!(
                server.served(tenant),
                Some(REQUESTS as u64),
                "{pool:?}/{pacing:?}: tenant {t} lost work across shutdown"
            );
        }

        for (t, (tenant_tickets, want)) in tickets.into_iter().zip(&reference).enumerate() {
            assert_eq!(tenant_tickets.len(), want.len());
            for (i, (ticket, expected)) in tenant_tickets.into_iter().zip(want).enumerate() {
                // Submission order is admission order: seq is dense.
                assert_eq!(
                    ticket.id().seq,
                    i as u64,
                    "{pool:?}/{pacing:?}: tenant {t} FIFO order"
                );
                let got = ticket.wait().unwrap();
                assert_eq!(
                    got.output, expected.output,
                    "{pool:?}/{pacing:?}: tenant {t} request {i} diverged from replay"
                );
                assert_eq!(
                    got.report, expected.report,
                    "{pool:?}/{pacing:?}: tenant {t} request {i} report diverged"
                );
            }
        }
    }
}

#[test]
fn concurrent_clients_match_dedicated_replay_under_saturation_pacing() {
    concurrent_clients_match_replay(PacingPolicy::Saturation);
}

#[test]
fn concurrent_clients_match_dedicated_replay_under_deadline_pacing() {
    concurrent_clients_match_replay(PacingPolicy::Deadline(Duration::from_millis(1)));
}

#[test]
fn concurrent_clients_match_dedicated_replay_under_manual_pacing() {
    concurrent_clients_match_replay(PacingPolicy::Manual);
}

/// Two threads hammering the *same* tenant through separate clients:
/// admission interleaving is nondeterministic, but every request knows
/// its admitted seq, and replaying the inputs in seq order through a
/// dedicated session must reproduce every output bit for bit.
#[test]
fn shared_tenant_reassembles_by_seq_under_saturation_pacing() {
    for pool in POOLS {
        let (server, handles) = build_server(pool, PacingPolicy::Saturation, 4 * REQUESTS);
        let (tenant, layer) = handles[1]; // Never policy: seq alone orders the replay
        let handle = server.serve();
        let root = handle.client();

        let halves: Vec<Vec<(u64, Tensor, mercury_core::LayerForward)>> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..2)
                    .map(|half| {
                        let client = root.clone();
                        // Distinct inputs per half so the test can tell
                        // which input landed on which seq.
                        let stream = mix().tenant_stream(10 + half, REQUESTS);
                        scope.spawn(move || {
                            stream
                                .into_iter()
                                .map(|input| {
                                    let ticket =
                                        client.submit(tenant, layer, input.clone()).unwrap();
                                    let seq = ticket.id().seq;
                                    (seq, input, ticket.wait().unwrap())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).collect()
            });
        drop(handle);

        let mut by_seq: Vec<(u64, Tensor, mercury_core::LayerForward)> =
            halves.into_iter().flatten().collect();
        by_seq.sort_by_key(|(seq, _, _)| *seq);
        // Zero lost, zero duplicated: seqs are exactly 0..2*REQUESTS.
        let seqs: Vec<u64> = by_seq.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(
            seqs,
            (0..2 * REQUESTS as u64).collect::<Vec<_>>(),
            "{pool:?}"
        );

        let mut replay = MercurySession::new(MercuryConfig::default(), SEED + 1).unwrap();
        let rlayer = replay.register_fc(weights(1)).unwrap();
        for (seq, input, got) in &by_seq {
            let want = replay.submit(rlayer, input).unwrap();
            assert_eq!(got.output, want.output, "{pool:?}: seq {seq}");
            assert_eq!(got.report, want.report, "{pool:?}: seq {seq}");
        }
    }
}

/// Backpressure stays typed and lands at the submit call site: under
/// manual pacing nothing drains, so the bounded queue fills and the
/// next submit gets `QueueFull`; one explicit tick frees a window.
#[test]
fn queue_full_surfaces_at_submit_under_manual_pacing() {
    let capacity = 4;
    let (server, handles) = build_server(ExecutorKind::Serial, PacingPolicy::Manual, capacity);
    let (tenant, layer) = handles[1];
    let handle = server.serve();
    let client = handle.client();
    let stream = mix().tenant_stream(1, capacity + 1);

    let mut tickets = Vec::new();
    for (i, input) in stream.iter().enumerate() {
        let verdict = client.submit(tenant, layer, input.clone());
        if i < capacity {
            tickets.push(verdict.unwrap());
        } else {
            assert_eq!(
                verdict.unwrap_err(),
                ServeError::QueueFull { tenant, capacity },
                "submit {i} must be refused, not buffered"
            );
        }
    }

    // The explicit lever serves one window (batch_window = 4), after
    // which the refused request is admissible.
    let report = handle.tick_now().unwrap();
    assert!(!report.idle);
    assert_eq!(report.completed, 4);
    tickets.push(
        client
            .submit(tenant, layer, stream[capacity].clone())
            .unwrap(),
    );

    let server = handle.shutdown();
    assert_eq!(server.served(tenant), Some(capacity as u64 + 1));
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert!(ticket.wait().is_ok(), "request {i}");
    }
}

/// `tick_now` is the manual pacing lever and reports what it did; an
/// idle tick is observable and does not advance the tick counter, so
/// eviction-log tick numbers never drift under manual polling either.
#[test]
fn tick_now_reports_idle_and_served_work_under_manual_pacing() {
    let (server, handles) = build_server(ExecutorKind::Serial, PacingPolicy::Manual, 8);
    let (tenant, layer) = handles[2];
    let handle = server.serve();
    let client = handle.client();

    let idle = handle.tick_now().unwrap();
    assert!(idle.idle);
    assert_eq!(idle.tick, 0, "idle ticks do not advance the counter");

    let ticket = client
        .submit(tenant, layer, mix().tenant_stream(2, 1).remove(0))
        .unwrap();
    // Nothing ticks until the lever is pulled: the ticket stays pending.
    let ticket = match ticket.try_take() {
        Err(pending) => pending,
        Ok(result) => panic!("manual pacing served without tick_now: {result:?}"),
    };

    let served = handle.tick_now().unwrap();
    assert!(!served.idle);
    assert_eq!(served.tick, 1);
    assert_eq!(served.completed, 1);
    let forward = ticket
        .try_take()
        .expect("completed after tick_now")
        .unwrap();
    assert_eq!(forward.output.shape(), &[1, OUTPUTS]);
    drop(handle);
}

/// Clients outliving the endpoint get the typed `Stopped`, never a
/// hang: submits racing past shutdown are refused, tickets already
/// admitted redeem normally.
#[test]
fn submits_after_shutdown_are_stopped_under_saturation_pacing() {
    let (server, handles) = build_server(ExecutorKind::Serial, PacingPolicy::Saturation, 8);
    let (tenant, layer) = handles[0];
    let handle = server.serve();
    let client = handle.client();
    let clone: ServeClient = client.clone();

    let ticket = client
        .submit(tenant, layer, mix().tenant_stream(0, 1).remove(0))
        .unwrap();
    let server = handle.shutdown();
    assert_eq!(server.served(tenant), Some(1));
    // The admitted request drained to its ticket before shutdown
    // returned; only new work is refused.
    assert!(ticket.wait().is_ok());
    for c in [client, clone] {
        assert_eq!(
            c.submit(tenant, layer, mix().tenant_stream(0, 1).remove(0))
                .unwrap_err(),
            ServeError::Stopped
        );
    }
}

/// Admission errors keep their types across the channel: ids minted by
/// a *different* server are refused at submit, exactly as the
/// synchronous `enqueue` refuses them.
#[test]
fn foreign_ids_are_refused_at_submit_under_saturation_pacing() {
    let (server, handles) = build_server(ExecutorKind::Serial, PacingPolicy::Saturation, 8);
    let (_, layer) = handles[0];
    let (other_server, other_handles) =
        build_server(ExecutorKind::Serial, PacingPolicy::Saturation, 8);
    let (foreign_tenant, _) = other_handles[0];
    drop(other_server);

    let handle: ServeHandle = server.serve();
    let client = handle.client();
    assert_eq!(
        client
            .submit(foreign_tenant, layer, mix().tenant_stream(0, 1).remove(0))
            .unwrap_err(),
        ServeError::UnknownTenant(foreign_tenant)
    );
    drop(handle);
}
