//! Multi-tenant serving through `mercury-serve`, end to end: interleaved
//! tenant traffic through one [`Server`] on a shared pool must be
//! **per-tenant bit-identical** to a dedicated single-tenant
//! [`MercurySession`] replaying the same admission order — at pool
//! widths 1/2/8 — and the global memory budget must hold its invariants
//! under streaming load (total `bank_bytes` ≤ budget after every tick,
//! evictions observable, the just-served tenant evicted only as a last
//! resort). The fault-injected variant (one tenant poisoned mid-stream
//! while its neighbour replays bit-identically) lives at the bottom,
//! gated on the `fault-inject` feature like the chaos suite.

use mercury_core::{LayerId, MercuryConfig, MercurySession};
use mercury_serve::{Completion, EpochPolicy, ServeConfig, Server, TenantId};
use mercury_tensor::exec::ExecutorKind;
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// The pool widths the determinism law is pinned at (the serve satellite
/// mirrors the session-level 1/2/8 convention).
const POOLS: [ExecutorKind; 3] = [
    ExecutorKind::Serial,
    ExecutorKind::Threaded { threads: 2 },
    ExecutorKind::Threaded { threads: 8 },
];

/// One tenant's scripted traffic: its session seed, its layer kind, its
/// epoch policy, and the deterministic request stream.
struct Script {
    name: &'static str,
    seed: u64,
    policy: EpochPolicy,
    kind: LayerKind,
    inputs: Vec<Tensor>,
}

#[derive(Clone, Copy, PartialEq)]
enum LayerKind {
    Conv,
    Fc,
    Attention,
}

fn scripts() -> Vec<Script> {
    let mut rng = Rng::new(0xA11CE);
    // Small pools of popular payloads per tenant, service-style: repeats
    // give the banked caches real reuse to persist (and the budget test
    // real bytes to evict).
    let conv_pool: Vec<Tensor> = (0..3)
        .map(|_| Tensor::randn(&[1, 8, 8], &mut rng))
        .collect();
    let fc_pool: Vec<Tensor> = (0..3).map(|_| Tensor::randn(&[2, 8], &mut rng)).collect();
    let att_pool: Vec<Tensor> = (0..2).map(|_| Tensor::randn(&[4, 5], &mut rng)).collect();
    vec![
        Script {
            name: "conv-tenant",
            seed: 31,
            policy: EpochPolicy::EveryRequests(4),
            kind: LayerKind::Conv,
            inputs: (0..9)
                .map(|i| conv_pool[i % conv_pool.len()].clone())
                .collect(),
        },
        Script {
            name: "fc-tenant",
            seed: 32,
            policy: EpochPolicy::Never,
            kind: LayerKind::Fc,
            inputs: (0..11)
                .map(|i| fc_pool[i % fc_pool.len()].clone())
                .collect(),
        },
        Script {
            name: "att-tenant",
            seed: 33,
            policy: EpochPolicy::Never,
            kind: LayerKind::Attention,
            inputs: (0..7)
                .map(|i| att_pool[i % att_pool.len()].clone())
                .collect(),
        },
    ]
}

/// Registers a script's layer on any session-like target through the
/// server (`Some`) or a dedicated session (`None`).
fn register_layer(
    kind: LayerKind,
    seed: u64,
    server: Option<(&mut Server, TenantId)>,
    session: Option<&mut MercurySession>,
) -> LayerId {
    // The layer weights derive from the tenant seed, so the server-side
    // and replay-side layers are identical.
    let mut rng = Rng::new(seed ^ 0xFEED);
    match kind {
        LayerKind::Conv => {
            let kernels = Tensor::randn(&[2, 1, 3, 3], &mut rng);
            match (server, session) {
                (Some((srv, t)), None) => srv.register_conv(t, kernels, 1, 0).unwrap(),
                (None, Some(s)) => s.register_conv(kernels, 1, 0).unwrap(),
                _ => unreachable!("exactly one target"),
            }
        }
        LayerKind::Fc => {
            let weights = Tensor::randn(&[8, 4], &mut rng);
            match (server, session) {
                (Some((srv, t)), None) => srv.register_fc(t, weights).unwrap(),
                (None, Some(s)) => s.register_fc(weights).unwrap(),
                _ => unreachable!("exactly one target"),
            }
        }
        LayerKind::Attention => match (server, session) {
            (Some((srv, t)), None) => srv.register_attention(t).unwrap(),
            (None, Some(s)) => s.register_attention().unwrap(),
            _ => unreachable!("exactly one target"),
        },
    }
}

/// Drives the scripts through one server interleaved (admission
/// round-robins two requests per tenant between ticks) and returns each
/// tenant's completions in per-tenant sequence order.
fn serve_interleaved(pool: ExecutorKind, budget: Option<usize>) -> (Server, Vec<Vec<Completion>>) {
    let config = ServeConfig::builder()
        .executor(pool)
        .queue_capacity(32)
        .batch_window(3) // misaligned with both pool sizes and policies
        .memory_budget(budget)
        .build()
        .unwrap();
    let mut server = Server::new(config).unwrap();
    let scripts = scripts();
    let handles: Vec<(TenantId, LayerId)> = scripts
        .iter()
        .map(|s| {
            let tenant = server
                .register_tenant(s.name, MercuryConfig::default(), s.seed, s.policy)
                .unwrap();
            let layer = register_layer(s.kind, s.seed, Some((&mut server, tenant)), None);
            (tenant, layer)
        })
        .collect();

    let mut streams: Vec<std::vec::IntoIter<Tensor>> =
        scripts.into_iter().map(|s| s.inputs.into_iter()).collect();
    let mut per_tenant: Vec<Vec<Completion>> = (0..handles.len()).map(|_| Vec::new()).collect();
    loop {
        let mut admitted = false;
        for (t, &(tenant, layer)) in handles.iter().enumerate() {
            for input in streams[t].by_ref().take(2) {
                server.enqueue(tenant, layer, input).unwrap();
                admitted = true;
            }
        }
        let report = server.tick();
        if let Some(cap) = budget {
            assert!(
                server.bank_bytes() <= cap,
                "budget invariant violated after tick {}",
                report.tick
            );
        }
        let drained = server.tenant_ids().all(|t| server.queued(t) == Some(0));
        for completion in server.drain_completions() {
            let index = handles
                .iter()
                .position(|&(t, _)| t == completion.id.tenant)
                .unwrap();
            per_tenant[index].push(completion);
        }
        if !admitted && drained {
            break;
        }
    }
    (server, per_tenant)
}

/// Replays one script through a dedicated single-tenant session,
/// mirroring the epoch policy at exact request counts.
fn dedicated_replay(script: &Script) -> Vec<mercury_core::LayerForward> {
    let mut session = MercurySession::new(MercuryConfig::default(), script.seed).unwrap();
    let layer = register_layer(script.kind, script.seed, None, Some(&mut session));
    let mut outputs = Vec::new();
    for (i, input) in script.inputs.iter().enumerate() {
        outputs.push(session.submit(layer, input).unwrap());
        if let EpochPolicy::EveryRequests(n) = script.policy {
            if (i as u64 + 1) % n == 0 {
                session.advance_epoch();
            }
        }
    }
    outputs
}

#[test]
fn interleaved_tenants_match_dedicated_replay_at_every_pool_width() {
    let reference: Vec<Vec<mercury_core::LayerForward>> =
        scripts().iter().map(dedicated_replay).collect();
    for pool in POOLS {
        let (_, per_tenant) = serve_interleaved(pool, None);
        for (t, (completions, want)) in per_tenant.iter().zip(&reference).enumerate() {
            assert_eq!(completions.len(), want.len(), "{pool:?}: tenant {t} count");
            for (i, (completion, expected)) in completions.iter().zip(want).enumerate() {
                assert_eq!(
                    completion.id.seq, i as u64,
                    "{pool:?}: tenant {t} FIFO order"
                );
                let got = completion.result.as_ref().unwrap();
                assert_eq!(
                    got.output, expected.output,
                    "{pool:?}: tenant {t} request {i} output diverged from dedicated replay"
                );
                assert_eq!(
                    got.report, expected.report,
                    "{pool:?}: tenant {t} request {i} report diverged"
                );
            }
        }
    }
}

#[test]
fn manual_epoch_lever_mirrors_dedicated_replay() {
    // An operator advancing a tenant's epoch mid-stream at a recorded
    // request count replays exactly: the server-side boundary lands
    // between ticks, never inside a batch.
    let script = &scripts()[1]; // fc tenant, Never policy → manual lever
    let config = ServeConfig::builder()
        .executor(ExecutorKind::Threaded { threads: 2 })
        .queue_capacity(32)
        .batch_window(2)
        .build()
        .unwrap();
    let mut server = Server::new(config).unwrap();
    let tenant = server
        .register_tenant(
            script.name,
            MercuryConfig::default(),
            script.seed,
            script.policy,
        )
        .unwrap();
    let layer = register_layer(script.kind, script.seed, Some((&mut server, tenant)), None);

    let mut completions = Vec::new();
    let mut advanced_at = None;
    for input in &script.inputs {
        server.enqueue(tenant, layer, input.clone()).unwrap();
        server.tick();
        completions.extend(server.drain_completions());
        // After roughly half the stream, pull the lever once.
        if advanced_at.is_none() && server.served(tenant).unwrap() >= 5 {
            server.advance_epoch(tenant).unwrap();
            advanced_at = Some(server.served(tenant).unwrap());
        }
    }
    let advanced_at = advanced_at.unwrap();

    let mut replay = MercurySession::new(MercuryConfig::default(), script.seed).unwrap();
    let rlayer = register_layer(script.kind, script.seed, None, Some(&mut replay));
    for (i, input) in script.inputs.iter().enumerate() {
        let want = replay.submit(rlayer, input).unwrap();
        let got = completions[i].result.as_ref().unwrap();
        assert_eq!(got.output, want.output, "request {i}");
        assert_eq!(got.report, want.report, "request {i}");
        if (i as u64 + 1) == advanced_at {
            replay.advance_epoch();
        }
    }
}

#[test]
fn budget_invariants_hold_under_interleaved_load() {
    // Find the unconstrained working set first, then rerun under a
    // budget that cannot hold all tenants at once.
    let (open_server, _) = serve_interleaved(ExecutorKind::Serial, None);
    let working_set = open_server.bank_bytes();
    assert!(working_set > 0, "streams must bank state");
    assert_eq!(open_server.evictions(), 0, "no budget, no evictions");

    let budget = working_set / 3;
    for pool in POOLS {
        // serve_interleaved asserts `bank_bytes <= budget` after every
        // tick internally.
        let (server, per_tenant) = serve_interleaved(pool, Some(budget));
        assert!(
            server.evictions() > 0,
            "{pool:?}: a budget below the working set must evict"
        );
        for eviction in server.eviction_log() {
            assert!(eviction.bytes_freed > 0, "{pool:?}: empty eviction logged");
            assert!(eviction.tick > 0);
        }
        // Eviction changes reuse statistics, never availability: every
        // request still completed, in FIFO order, successfully.
        for (t, completions) in per_tenant.iter().enumerate() {
            for (i, completion) in completions.iter().enumerate() {
                assert_eq!(completion.id.seq, i as u64, "{pool:?}: tenant {t}");
                assert!(completion.result.is_ok(), "{pool:?}: tenant {t} req {i}");
            }
        }
    }
}

#[test]
fn just_served_tenant_survives_eviction_while_idle_bytes_remain() {
    // Alternate single-tenant service under a budget that holds exactly
    // one tenant's bank: every breach must claim the *idle* tenant, so
    // the tenant served in a tick always retains its bank through that
    // tick's enforcement.
    let scripts = scripts();
    let fc = &scripts[1];
    let make = |budget| {
        let config = ServeConfig::builder()
            .queue_capacity(16)
            .batch_window(4)
            .memory_budget(budget)
            .build()
            .unwrap();
        let mut server = Server::new(config).unwrap();
        let a = server
            .register_tenant("a", MercuryConfig::default(), fc.seed, EpochPolicy::Never)
            .unwrap();
        let b = server
            .register_tenant(
                "b",
                MercuryConfig::default(),
                fc.seed + 1,
                EpochPolicy::Never,
            )
            .unwrap();
        let la = register_layer(LayerKind::Fc, fc.seed, Some((&mut server, a)), None);
        let lb = register_layer(LayerKind::Fc, fc.seed + 1, Some((&mut server, b)), None);
        (server, [(a, la), (b, lb)])
    };

    // Measure one tenant's steady-state bank.
    let (mut probe, handles) = make(None);
    for input in fc.inputs.iter().take(4) {
        probe
            .enqueue(handles[0].0, handles[0].1, input.clone())
            .unwrap();
    }
    probe.tick();
    let one_bank = probe.bank_bytes();
    assert!(one_bank > 0);

    let (mut server, handles) = make(Some(one_bank));
    for round in 0..6 {
        let (tenant, layer) = handles[round % 2];
        for input in fc.inputs.iter().take(4) {
            server.enqueue(tenant, layer, input.clone()).unwrap();
        }
        let report = server.tick();
        assert!(server.bank_bytes() <= one_bank, "round {round}");
        for eviction in &report.evictions {
            assert_ne!(
                eviction.tenant, tenant,
                "round {round}: the budget evicted the tenant being served \
                 while the idle tenant still held bytes"
            );
        }
        assert!(
            server.session(tenant).unwrap().bank_bytes() > 0,
            "round {round}: the served tenant must retain its fresh bank"
        );
    }
    assert!(server.evictions() > 0, "alternating service must evict");
}

/// Poisoning mid-stream: the faulted tenant answers typed errors, the
/// neighbour replays bit-identically, and explicit recovery restores
/// service — at every pool width. Gated like the chaos suite: the
/// injection points only exist under `fault-inject`.
#[cfg(feature = "fault-inject")]
mod poisoned {
    use super::*;
    use mercury_core::{LayerHealth, MercuryError};
    use mercury_faults::{harness, FaultSite, FaultSpec};
    use mercury_serve::RecoveryPolicy;

    #[test]
    fn poisoned_tenant_is_contained_and_neighbour_replays_identically() {
        let scripts = scripts();
        let conv = &scripts[0];
        let fc = &scripts[1];
        let reference = dedicated_replay(fc);
        for pool in POOLS {
            // Manual recovery so the poisoned tenant stays fenced long
            // enough to observe the typed errors.
            let config = ServeConfig::builder()
                .executor(pool)
                .queue_capacity(32)
                .batch_window(3)
                .recovery(RecoveryPolicy::Manual)
                .build()
                .unwrap();
            let mut server = Server::new(config).unwrap();
            let pt = server
                .register_tenant(
                    "poisoned",
                    MercuryConfig::default(),
                    conv.seed,
                    EpochPolicy::Never,
                )
                .unwrap();
            let pl = register_layer(LayerKind::Conv, conv.seed, Some((&mut server, pt)), None);
            let ht = server
                .register_tenant("healthy", MercuryConfig::default(), fc.seed, fc.policy)
                .unwrap();
            let hl = register_layer(LayerKind::Fc, fc.seed, Some((&mut server, ht)), None);

            let h = harness();
            // Only the conv tenant emits ChannelShard events, so the
            // ordinal is deterministic however the pool schedules: the
            // 2nd conv request faults (each [1,8,8] input is one channel
            // = one event).
            h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 2));

            let mut fc_completions = Vec::new();
            let mut conv_results = Vec::new();
            let mut conv_stream = conv.inputs.iter();
            for input in &fc.inputs {
                server.enqueue(ht, hl, input.clone()).unwrap();
                if let Some(c) = conv_stream.next() {
                    server.enqueue(pt, pl, c.clone()).unwrap();
                }
                server.tick();
                for completion in server.drain_completions() {
                    if completion.id.tenant == ht {
                        fc_completions.push(completion);
                    } else {
                        conv_results.push(completion.result);
                    }
                }
            }
            assert_eq!(h.fired().len(), 1, "{pool:?}");

            // The poisoned tenant: request 1 fine, request 2 the panic,
            // every later request the typed Poisoned refusal.
            assert!(conv_results[0].is_ok(), "{pool:?}");
            assert!(
                matches!(&conv_results[1], Err(MercuryError::EnginePanic { layer, .. }) if *layer == pl),
                "{pool:?}: {:?}",
                conv_results[1]
            );
            for (i, later) in conv_results.iter().enumerate().skip(2) {
                assert_eq!(
                    later.as_ref().unwrap_err(),
                    &MercuryError::Poisoned(pl),
                    "{pool:?}: request {i}"
                );
            }
            assert_eq!(
                server.session(pt).unwrap().layer_health(pl),
                Some(LayerHealth::Poisoned),
                "{pool:?}"
            );

            // The neighbour, bit for bit.
            for (i, (completion, want)) in fc_completions.iter().zip(&reference).enumerate() {
                let got = completion.result.as_ref().unwrap();
                assert_eq!(got.output, want.output, "{pool:?}: request {i}");
                assert_eq!(got.report, want.report, "{pool:?}: request {i}");
            }

            // Explicit recovery restores service in degraded warm-up.
            server.recover(pt, pl).unwrap();
            server.enqueue(pt, pl, conv.inputs[0].clone()).unwrap();
            server.tick();
            let completions = server.drain_completions();
            let recovered = completions[0].result.as_ref().unwrap();
            assert!(recovered.report.degraded, "{pool:?}");
        }
    }

    #[test]
    fn immediate_policy_auto_recovers_between_ticks() {
        // Default policy: the tick that surfaces the poison also
        // quarantines and re-enters the layer, and the report says so.
        let scripts = scripts();
        let conv = &scripts[0];
        let config = ServeConfig::builder()
            .queue_capacity(16)
            .batch_window(4)
            .build()
            .unwrap();
        assert_eq!(config.recovery, RecoveryPolicy::Immediate);
        let mut server = Server::new(config).unwrap();
        let tenant = server
            .register_tenant("t", MercuryConfig::default(), conv.seed, EpochPolicy::Never)
            .unwrap();
        let layer = register_layer(
            LayerKind::Conv,
            conv.seed,
            Some((&mut server, tenant)),
            None,
        );

        let h = harness();
        h.arm(FaultSpec::panic_at(FaultSite::ChannelShard, 1));
        server
            .enqueue(tenant, layer, conv.inputs[0].clone())
            .unwrap();
        let report = server.tick();
        assert!(matches!(
            server.drain_completions()[0].result,
            Err(MercuryError::EnginePanic { .. })
        ));
        assert_eq!(report.recovered, vec![(tenant, layer)]);
        assert_ne!(
            server.session(tenant).unwrap().layer_health(layer),
            Some(LayerHealth::Poisoned),
            "auto-recovery re-entered the layer before the tick returned"
        );

        // The next request serves (degraded warm-up), no operator action.
        server
            .enqueue(tenant, layer, conv.inputs[0].clone())
            .unwrap();
        let next = server.tick();
        let completions = server.drain_completions();
        let fwd = completions[0].result.as_ref().unwrap();
        assert!(fwd.report.degraded);
        assert!(next.recovered.is_empty());
    }
}
