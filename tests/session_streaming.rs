//! Service-style streaming through a long-lived `MercurySession`: MCACHE
//! state persists across an unbounded stream of `submit` calls, eviction
//! happens per epoch rather than per forward pass, and the numeric
//! outputs stay exact for exact-repeat content — the ROADMAP's
//! "long-lived engine with streaming inputs" workload, end to end.

use mercury_core::{MercuryConfig, MercurySession};
use mercury_tensor::conv::conv2d_multi;
use mercury_tensor::rng::Rng;
use mercury_tensor::Tensor;

/// A small pool of "popular" request payloads, as a service would see:
/// most traffic repeats a few shapes, with occasional fresh content.
fn request_pool(rng: &mut Rng) -> Vec<Tensor> {
    (0..3)
        .map(|i| {
            if i == 0 {
                Tensor::full(&[1, 12, 12], 0.3)
            } else {
                Tensor::randn(&[1, 12, 12], rng)
            }
        })
        .collect()
}

#[test]
fn multi_epoch_stream_persists_and_evicts_by_epoch() {
    let mut rng = Rng::new(100);
    let mut session = MercurySession::new(MercuryConfig::default(), 7).unwrap();
    let kernels = Tensor::randn(&[6, 1, 3, 3], &mut rng);
    let conv = session.register_conv(kernels.clone(), 1, 1).unwrap();
    let pool = request_pool(&mut rng);

    let epochs = 3usize;
    let submits_per_epoch = 8usize;
    let mut cold_maus_per_epoch = Vec::new();
    let mut warm_maus_per_epoch = Vec::new();

    for _ in 0..epochs {
        let mut epoch_maus = Vec::new();
        let mut first_response: Vec<Option<Tensor>> = vec![None; pool.len()];
        for s in 0..submits_per_epoch {
            let input = &pool[s % pool.len()];
            let fwd = session.submit(conv, input).unwrap();
            epoch_maus.push(fwd.report.stats.maus);

            // Repeat-stability: an identical request must get a
            // bit-identical response for the rest of the epoch, no matter
            // what other traffic interleaved (promoted producers recompute
            // their own patches, so repeats never absorb foreign values).
            let first = first_response[s % pool.len()].get_or_insert_with(|| fwd.output.clone());
            assert_eq!(
                first, &fwd.output,
                "repeated request diverged within an epoch"
            );
        }
        // The constant payload has one distinct patch, so its streamed
        // output must match the exact convolution bit-for-bit reuse-wise.
        let exact = conv2d_multi(&pool[0], &kernels, 1, 1).unwrap();
        let got = first_response[0].as_ref().unwrap();
        for (g, w) in got.data().iter().zip(exact.data()) {
            assert!((g - w).abs() < 1e-3, "constant payload drifted");
        }
        // First sight of each pool member inserts tags; repeats of the
        // pool within the same epoch insert nothing — the cache state
        // persisted across submit calls.
        cold_maus_per_epoch.push(epoch_maus[..pool.len()].iter().sum::<u64>());
        warm_maus_per_epoch.push(epoch_maus[pool.len()..].iter().sum::<u64>());
        session.advance_epoch();
    }

    for (epoch, (&cold, &warm)) in cold_maus_per_epoch
        .iter()
        .zip(&warm_maus_per_epoch)
        .enumerate()
    {
        assert!(cold > 0, "epoch {epoch}: cold submits must insert tags");
        assert_eq!(warm, 0, "epoch {epoch}: warm submits must be pure hits");
    }
    // Epoch eviction works: every epoch re-pays the same cold-start cost
    // (nothing leaks across advance_epoch, nothing is resurrected).
    assert!(
        cold_maus_per_epoch.windows(2).all(|w| w[0] == w[1]),
        "epochs should start from identical cold state: {cold_maus_per_epoch:?}"
    );

    assert_eq!(session.epoch(), epochs as u64);
    assert_eq!(
        session.layer_submits(conv),
        Some((epochs * submits_per_epoch) as u64)
    );
    let totals = session.total_stats();
    assert!(
        totals.hits > totals.maus * 2,
        "a popular-pool stream should be hit-dominated: {totals:?}"
    );
}

#[test]
fn mixed_layer_session_streams_all_three_families() {
    let mut rng = Rng::new(101);
    let mut session = MercurySession::new(MercuryConfig::default(), 11).unwrap();
    let conv = session
        .register_conv(Tensor::randn(&[4, 2, 3, 3], &mut rng), 1, 0)
        .unwrap();
    let fc = session
        .register_fc(Tensor::randn(&[16, 8], &mut rng))
        .unwrap();
    let att = session.register_attention().unwrap();

    let img = Tensor::randn(&[2, 8, 8], &mut rng);
    let rows = Tensor::randn(&[4, 16], &mut rng);
    let seq = Tensor::randn(&[6, 9], &mut rng);

    for _ in 0..3 {
        assert_eq!(
            session.submit(conv, &img).unwrap().output.shape(),
            &[4, 6, 6]
        );
        assert_eq!(session.submit(fc, &rows).unwrap().output.shape(), &[4, 8]);
        assert_eq!(session.submit(att, &seq).unwrap().output.shape(), &[6, 9]);
    }
    // Second and third rounds are pure repeats: every family detects them.
    for id in [conv, fc, att] {
        let stats = session.layer_stats(id).unwrap();
        assert!(stats.hits > 0, "{id:?} saw no cross-submit reuse");
    }
}

#[test]
fn batched_submits_stream_like_sequential_ones() {
    // `submit_batch` is the fan-out front door for service traffic: a
    // round of requests across layers must leave the session in exactly
    // the state the equivalent sequential submits would — including the
    // cross-request MCACHE persistence *within* one batch (two same-layer
    // requests in one batch see each other's tags, in batch order).
    use mercury_core::ExecutorKind;

    let mut rng = Rng::new(102);
    let kernels = Tensor::randn(&[4, 1, 3, 3], &mut rng);
    let weights = Tensor::randn(&[10, 4], &mut rng);
    let img = Tensor::full(&[1, 8, 8], 0.6);
    let rows = Tensor::randn(&[4, 10], &mut rng);

    let mut sessions = Vec::new();
    for kind in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 4 }] {
        let config = MercuryConfig::builder().executor(kind).build().unwrap();
        let mut s = MercurySession::new(config, 9).unwrap();
        let conv = s.register_conv(kernels.clone(), 1, 1).unwrap();
        let fc = s.register_fc(weights.clone()).unwrap();
        let outs = s
            .submit_batch(&[(conv, &img), (fc, &rows), (conv, &img)])
            .unwrap();
        // Second conv request repeats the first within the same batch: it
        // must see the tags the first inserted (pure hits, zero MAUs).
        assert!(outs[0].stats().maus > 0);
        assert_eq!(outs[2].stats().maus, 0);
        assert_eq!(outs[2].output, outs[0].output);
        sessions.push((s, conv, fc, outs));
    }
    // Serial and threaded fan-out are bit-identical, down to the stats.
    let (a, b) = (&sessions[0], &sessions[1]);
    for (x, y) in a.3.iter().zip(&b.3) {
        assert_eq!(x.output, y.output);
        assert_eq!(x.report, y.report);
    }
    assert_eq!(a.0.total_stats(), b.0.total_stats());
}

#[test]
fn session_survives_a_long_stream_without_state_blowup() {
    // An "unbounded" stream smoke test: hundreds of submits across many
    // epochs, with stable per-epoch behaviour throughout.
    let mut rng = Rng::new(103);
    let mut session = MercurySession::new(MercuryConfig::default(), 13).unwrap();
    let fc = session
        .register_fc(Tensor::randn(&[10, 4], &mut rng))
        .unwrap();
    let payload = Tensor::randn(&[8, 10], &mut rng);

    let mut first_epoch_hits = None;
    for _ in 0..20 {
        let mut epoch_hits = 0;
        for _ in 0..10 {
            epoch_hits += session.submit(fc, &payload).unwrap().report.stats.hits;
        }
        let first = *first_epoch_hits.get_or_insert(epoch_hits);
        assert_eq!(epoch_hits, first, "per-epoch behaviour must be stable");
        session.advance_epoch();
    }
    assert_eq!(session.layer_submits(fc), Some(200));
}
