//! Cross-crate integration: training with and without MERCURY over the
//! synthetic workloads, with the adaptation loop engaged.

use mercury_core::MercuryConfig;
use mercury_dnn::{ExecMode, Layer, Network, Trainer, TrainerConfig};
use mercury_models::trainable::{build_reduced, IMAGE_SIDE};
use mercury_tensor::rng::Rng;
use mercury_workloads::images::ImageDataset;
use mercury_workloads::sequences::SeqDataset;

fn image_data(classes: usize, per_class: usize, seed: u64) -> Vec<(mercury_tensor::Tensor, usize)> {
    let mut rng = Rng::new(seed);
    let ds = ImageDataset::new(classes, IMAGE_SIDE, 0.05, &mut rng);
    ds.generate(per_class, &mut rng)
}

#[test]
fn exact_and_mercury_training_both_learn() {
    let data = image_data(3, 10, 50);
    let mut accs = Vec::new();
    for mode in [
        ExecMode::Exact,
        ExecMode::Mercury {
            config: MercuryConfig::default(),
            seed: 77,
        },
    ] {
        let net = build_reduced("VGG-13", 3, mode, 123).unwrap();
        let mut trainer = Trainer::new(
            net,
            TrainerConfig {
                learning_rate: 0.05,
                batch_size: 6,
                adaptive: true,
            },
        );
        let mut rng = Rng::new(9);
        for _ in 0..8 {
            trainer.train_epoch(&data, &mut rng).unwrap();
        }
        accs.push(trainer.evaluate(&data).unwrap());
    }
    assert!(accs[0] > 0.7, "exact accuracy too low: {}", accs[0]);
    assert!(accs[1] > 0.7, "mercury accuracy too low: {}", accs[1]);
    // MERCURY stays within 20 points of exact on this easy task.
    assert!((accs[0] - accs[1]).abs() < 0.2);
}

#[test]
fn transformer_reduced_model_trains_with_attention_reuse() {
    let mut rng = Rng::new(60);
    let ds = SeqDataset::new(3, 8, 16, 2, 0.05, &mut rng);
    let data = ds.generate(10, &mut rng);
    let net = build_reduced(
        "Transformer",
        3,
        ExecMode::Mercury {
            config: MercuryConfig::default(),
            seed: 5,
        },
        42,
    )
    .unwrap();
    // Adaptation off: tiny 8-token attention cannot amortize signatures
    // (the stoppage controller would rightly disable it), but this test
    // verifies the reuse *mechanism* itself.
    let mut trainer = Trainer::new(
        net,
        TrainerConfig {
            adaptive: false,
            ..TrainerConfig::default()
        },
    );
    let mut stats = None;
    for _ in 0..6 {
        stats = Some(trainer.train_epoch(&data, &mut rng).unwrap());
    }
    let stats = stats.unwrap();
    // Repeated prototype tokens must produce attention-level reuse.
    assert!(
        stats.mercury.hits > 0,
        "expected attention reuse on repeated tokens"
    );
    assert!(trainer.evaluate(&data).unwrap() > 0.6);
}

#[test]
fn first_layer_skips_input_gradient() {
    // The first conv layer's backward must not pay the (useless) input
    // gradient; its returned gradient is all zeros.
    let mut rng = Rng::new(70);
    let mut net = Network::new(
        vec![
            Layer::conv2d(2, 1, 3, 1, &mut rng),
            Layer::flatten(),
            Layer::fc(2 * IMAGE_SIDE * IMAGE_SIDE, 2, &mut rng),
        ],
        ExecMode::Exact,
    );
    let x = mercury_tensor::Tensor::randn(&[1, IMAGE_SIDE, IMAGE_SIDE], &mut rng);
    let logits = net.forward(&x).unwrap();
    let (_, grad) = mercury_dnn::softmax_cross_entropy(&logits, &[0]).unwrap();
    net.backward(&grad).unwrap();
    // Parameters still update (dW is computed even without dX).
    net.step(0.1);
}

#[test]
fn adaptation_disables_layers_that_cannot_pay() {
    // A conv layer with a single filter can never amortize the signature
    // phase: the stoppage controller must turn its detection off.
    let mut rng = Rng::new(80);
    let net = Network::new(
        vec![
            Layer::conv2d(1, 1, 3, 1, &mut rng),
            Layer::relu(),
            Layer::flatten(),
            Layer::fc(IMAGE_SIDE * IMAGE_SIDE, 2, &mut rng),
        ],
        ExecMode::Mercury {
            config: MercuryConfig::default(),
            seed: 3,
        },
    );
    let data = image_data(2, 8, 81);
    let mut trainer = Trainer::new(net, TrainerConfig::default());
    let mut rng2 = Rng::new(82);
    let mut last = None;
    for _ in 0..3 {
        last = Some(trainer.train_epoch(&data, &mut rng2).unwrap());
    }
    assert_eq!(
        last.unwrap().detection_on,
        0,
        "1-filter conv should have detection stopped"
    );
}
